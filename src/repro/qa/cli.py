"""The ``qa`` subcommand: scan, report, gate.

Exit codes: 0 clean, 1 findings (CI gate), 2 usage error.

The whole-program pass (``--program``) adds the REP1xx analyzers on top
of the per-file rules and defaults its scan root to ``src/repro``.  A
baseline file (committed ``qa-baseline.json``) makes the gate a ratchet:
blessed pre-existing findings pass, anything new fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.qa.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.qa.engine import fix_unused_suppressions, scan_paths
from repro.qa.report import render_human, render_json, render_rules

#: Scan root assumed by ``qa --program`` when no paths are given.
DEFAULT_PROGRAM_ROOT = Path("src/repro")


def add_qa_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the qa options to a (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (e.g. src); --program defaults "
        f"to {DEFAULT_PROGRAM_ROOT}",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--fix-suppressions",
        action="store_true",
        help="rewrite files to delete unused # repro: noqa[...] entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="also run the whole-program REP1xx analyzers "
        "(checkpoint-completeness, async-safety, RNG flow)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="baseline file of blessed findings (default: "
        f"{DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; gate on every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from this scan's findings and exit 0",
    )


def _baseline_path(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.update_baseline:
        return default
    return None


def run_qa(args: argparse.Namespace) -> int:
    """Execute a scan described by parsed qa arguments."""
    if args.list_rules:
        print(render_rules())
        return 0
    paths = list(args.paths)
    if not paths and args.program and DEFAULT_PROGRAM_ROOT.exists():
        paths = [DEFAULT_PROGRAM_ROOT]
    if not paths:
        print("error: qa needs at least one path to scan", file=sys.stderr)
        return 2
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    baseline_path = _baseline_path(args)
    if args.update_baseline and baseline_path is None:
        print("error: --update-baseline conflicts with --no-baseline", file=sys.stderr)
        return 2
    result = scan_paths(paths, program=args.program)
    if args.fix_suppressions and result.unused_suppressions:
        removed = fix_unused_suppressions(result)
        print(f"qa: removed {removed} unused suppression id(s); re-scanning")
        result = scan_paths(paths, program=args.program)
    if args.update_baseline:
        assert baseline_path is not None
        entries = save_baseline(baseline_path, result.findings)
        print(
            f"qa: baseline {baseline_path} updated with {entries} "
            f"fingerprint(s) covering {len(result.findings)} finding(s)"
        )
        return 0
    if baseline_path is not None and baseline_path.exists():
        try:
            blessed = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result.findings, result.baselined = apply_baseline(
            result.findings, blessed, baseline_path.parent
        )
    print(render_json(result) if args.json else render_human(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.qa.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro qa",
        description="determinism & correctness static analysis",
    )
    add_qa_arguments(parser)
    return run_qa(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
