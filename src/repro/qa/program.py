"""Whole-program model: modules, classes, attributes, and the call graph.

The per-file rules in :mod:`repro.qa.checks` see one ``ast.Module`` at a
time; the REP1xx analyzers need facts that only exist *between* files —
which class a parameter annotation resolves to, which attributes a class
mutates anywhere in the package, which function a call lands in.  This
module builds that picture in two phases:

1. **Collect** — parse every file into a :class:`ModuleInfo`: import
   aliases, class definitions with their ``self.*`` attribute write
   sites, and raw function nodes.  Module names are recovered from the
   filesystem by climbing ``__init__.py`` parents, so the same builder
   works on ``src/repro`` and on synthetic fixture packages in tmp dirs.
2. **Resolve** — with every module known, resolve annotations and
   constructor calls to qualified class names, canonicalize re-exports
   (``repro.qa.ScanResult`` → ``repro.qa.engine.ScanResult``), and scan
   each function body with a small abstract interpreter that tracks
   local bindings (``store = system.trace_server.store`` keeps the
   *path*; ``if isinstance(store, FaultyChannel)`` narrows the class)
   to produce resolved :class:`CallSite` and :class:`Access` records.

Everything here is best-effort static inference: unresolved names stay
``None`` and analyzers must treat them as "unknown", never as proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

from repro.qa.rules import dotted_name

#: Methods whose *name* marks construction/reconstruction: attribute
#: writes inside them describe the init-time schema, not runtime drift.
INIT_LIKE_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__setstate__"})

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "popleft",
        "appendleft",
        "remove",
        "discard",
        "clear",
        "sort",
    }
)

#: Module-level helpers that mutate their first argument in place.
_ARG_MUTATORS = frozenset({"heapq.heappush", "heapq.heappop", "heapq.heapify"})

#: Synchronous (thread) locks: awaiting while holding one stalls the
#: whole event loop behind a lock other threads contend on.
SYNC_LOCK_CLASSES = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: Function-name prefixes (after stripping leading underscores) that
#: identify module-level snapshot/restore halves of a checkpoint pair.
SNAPSHOT_PREFIX = "snapshot"
RESTORE_PREFIX = "restore"

_RNG_NAME_HINTS = ("rng", "random_state")

#: Qualified name of the stdlib RNG class.
RANDOM_CLASS = "random.Random"


def is_rng_name(name: str) -> bool:
    """Heuristic: identifier names an RNG stream (``rng``, ``_rng``, ``latency_rng``)."""
    bare = name.lstrip("_").lower()
    return any(bare == hint or bare.endswith("_" + hint) for hint in _RNG_NAME_HINTS)


@dataclass
class AttrInfo:
    """One ``self.*`` attribute of a class, aggregated across methods."""

    name: str
    #: Line of the first sighting (preferring ``__init__``) — findings anchor here.
    first_line: int = 0
    #: method name -> line of an init-like assignment.
    init_writes: dict[str, int] = field(default_factory=dict)
    #: method name -> line of a non-init assignment (runtime drift).
    other_writes: dict[str, int] = field(default_factory=dict)
    #: method name -> line of an in-place mutation (append/subscript/heappush).
    mutations: dict[str, int] = field(default_factory=dict)
    #: Unresolved constructor / annotation expressions (resolved in phase 2).
    ctor_names: list[str] = field(default_factory=list)
    annotation: ast.expr | None = None
    #: Resolved class qualnames this attribute may hold (phase 2).
    class_hints: tuple[str, ...] = ()
    #: ``(line, function qualname)`` sites where *other* code wrote this attr.
    foreign_writes: list[tuple[int, str]] = field(default_factory=list)

    @property
    def mutable(self) -> bool:
        """True when the attribute changes after construction."""
        return bool(self.other_writes or self.mutations or self.foreign_writes)

    def evidence(self) -> str:
        """Short human description of why the attribute counts as mutable."""
        if self.other_writes:
            method, line = next(iter(sorted(self.other_writes.items(), key=lambda kv: kv[1])))
            return f"assigned in {method}() at line {line}"
        if self.mutations:
            method, line = next(iter(sorted(self.mutations.items(), key=lambda kv: kv[1])))
            return f"mutated in {method}() at line {line}"
        if self.foreign_writes:
            line, func = self.foreign_writes[0]
            return f"written by {func}() at line {line}"
        return "assigned only at construction"


@dataclass
class ClassInfo:
    """A class definition plus its aggregated attribute table."""

    name: str
    qualname: str
    module: str
    path: Path
    node: ast.ClassDef
    base_exprs: list[ast.expr] = field(default_factory=list)
    bases: tuple[str, ...] = ()
    attrs: dict[str, AttrInfo] = field(default_factory=dict)
    methods: dict[str, "FunctionInfo"] = field(default_factory=dict)
    has_slots: bool = False

    def attr(self, name: str, line: int) -> AttrInfo:
        info = self.attrs.get(name)
        if info is None:
            info = AttrInfo(name=name, first_line=line)
            self.attrs[name] = info
        return info

    def mutable_attrs(self) -> list[AttrInfo]:
        """Attributes that change after construction, sorted by name."""
        return [a for _, a in sorted(self.attrs.items()) if a.mutable]


@dataclass
class ArgInfo:
    """Pre-classified call argument (computed with local bindings in scope)."""

    text: str
    #: None (not RNG-like) | "named" | "unseeded" | "global" | "opaque".
    rng: str | None = None
    #: Description of an unordered collection source, when present.
    unordered: str | None = None
    node: ast.expr | None = None


@dataclass
class CallSite:
    """One resolved call inside a function body."""

    target: str | None
    line: int
    col: int
    awaited: bool = False
    #: The call is lexically inside an asyncio.* scheduling call
    #: (create_task/gather/...), so "not awaited" is fine.
    async_wrapped: bool = False
    #: The call is a bare expression statement: its result is thrown away.
    discarded: bool = False
    args: tuple[ArgInfo, ...] = ()
    keywords: dict[str, ArgInfo] = field(default_factory=dict)


@dataclass(frozen=True)
class Access:
    """A read/write of an attribute path rooted at ``self`` or a parameter.

    ``chain`` is the attribute chain below the root; for ``kind ==
    "methodcall"`` the last element is the method name.  ``key`` is set
    for ``kind == "key_read"`` (``param["k"]`` / ``param.get("k")``).

    When the path went through a local alias whose class the scanner
    knew (constructor, annotation, or isinstance narrowing),
    ``base_classes`` holds that knowledge and ``base_depth`` says how
    many chain elements it applies *after* — class resolution should
    restart from ``base_classes`` at ``chain[base_depth:]``.
    """

    root: str
    chain: tuple[str, ...]
    line: int
    kind: str  # "read" | "write" | "mutate" | "methodcall" | "key_read"
    key: str | None = None
    base_classes: tuple[str, ...] = ()
    base_depth: int = 0


@dataclass
class FunctionInfo:
    """A function or method with its resolved call/access records."""

    name: str
    qualname: str
    module: str
    path: Path
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qual: str | None = None
    is_async: bool = False
    #: param name -> resolved class qualnames from its annotation.
    param_classes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)
    accesses: list[Access] = field(default_factory=list)
    #: ``(line, lock description)`` for each await under a sync lock.
    sync_lock_awaits: list[tuple[int, str]] = field(default_factory=list)
    #: Final local bindings: name -> (root, chain) path aliases.
    local_paths: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)
    #: Final local bindings: name -> class qualnames.
    local_classes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def stripped_name(self) -> str:
        return self.name.lstrip("_")

    def param_names(self) -> list[str]:
        a = self.node.args
        return [p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]]


@dataclass
class ModuleInfo:
    """One parsed module plus its name bindings."""

    name: str
    path: Path
    tree: ast.Module
    package: str = ""
    #: local alias -> qualified target ("os", "repro.simulator.peer.Peer", ...)
    imports: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level functions only (methods live on ClassInfo).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level ``Alias = A | B`` unions: name -> member expressions.
    aliases: dict[str, list[ast.expr]] = field(default_factory=dict)


def module_name_for(path: Path) -> str:
    """Recover the dotted module name by climbing ``__init__.py`` parents."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class ProgramGraph:
    """The resolved whole-program model over one set of files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, files: Iterable[tuple[Path, ast.Module]]) -> "ProgramGraph":
        """Build from pre-parsed ``(path, tree)`` pairs (two-phase)."""
        graph = cls()
        for path, tree in files:
            graph._collect_module(path, tree)
        graph._resolve()
        return graph

    @classmethod
    def build_from_paths(cls, paths: Sequence[Path]) -> "ProgramGraph":
        """Convenience: parse and build from files/directories."""
        from repro.qa.engine import iter_python_files

        parsed: list[tuple[Path, ast.Module]] = []
        for file_path in iter_python_files(list(paths)):
            try:
                tree = ast.parse(file_path.read_text(encoding="utf-8"))
            except SyntaxError:
                continue
            parsed.append((file_path, tree))
        return cls.build(parsed)

    def _collect_module(self, path: Path, tree: ast.Module) -> None:
        name = module_name_for(path)
        if name in self.modules:  # same module reached twice via overlapping paths
            return
        package = name if path.stem == "__init__" else name.rpartition(".")[0]
        module = ModuleInfo(name=name, path=path, tree=tree, package=package)
        self.modules[name] = module
        self._collect_imports(module)
        for stmt in tree.body:
            self._collect_stmt(module, stmt)

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}" if base else alias.name

    @staticmethod
    def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        parts = module.package.split(".") if module.package else []
        if node.level > 1:
            parts = parts[: len(parts) - (node.level - 1)]
        if node.module:
            parts.append(node.module)
        return ".".join(parts)

    def _collect_stmt(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.ClassDef):
            self._collect_class(module, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                name=stmt.name,
                qualname=f"{module.name}.{stmt.name}",
                module=module.name,
                path=module.path,
                node=stmt,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
            module.functions[stmt.name] = info
            self.functions[info.qualname] = info
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(stmt.value, ast.BinOp):
                members = _union_members(stmt.value)
                if members:
                    module.aliases[target.id] = members
        elif isinstance(stmt, ast.If):
            # TYPE_CHECKING blocks and module-level guards: recurse.
            for sub in [*stmt.body, *stmt.orelse]:
                self._collect_stmt(module, sub)
        elif isinstance(stmt, (ast.Try,)):
            for sub in [*stmt.body, *stmt.orelse, *stmt.finalbody]:
                self._collect_stmt(module, sub)

    def _collect_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            name=node.name,
            qualname=qualname,
            module=module.name,
            path=module.path,
            node=node,
            base_exprs=list(node.bases),
        )
        module.classes[node.name] = info
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                attr = info.attr(stmt.target.id, stmt.lineno)
                attr.annotation = stmt.annotation
                attr.init_writes.setdefault("<class body>", stmt.lineno)
                if stmt.target.id == "__slots__":
                    info.has_slots = True
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__slots__":
                            info.has_slots = True
                            self._collect_slots(info, stmt.value, stmt.lineno)
                        else:
                            attr = info.attr(target.id, stmt.lineno)
                            attr.init_writes.setdefault("<class body>", stmt.lineno)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{qualname}.{stmt.name}",
                    module=module.name,
                    path=module.path,
                    node=stmt,
                    class_qual=qualname,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                info.methods[stmt.name] = fn
                self.functions[fn.qualname] = fn
                self._collect_self_writes(info, fn)

    @staticmethod
    def _collect_slots(info: ClassInfo, value: ast.expr, line: int) -> None:
        if isinstance(value, (ast.Tuple, ast.List)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    attr = info.attr(elt.value, elt.lineno)
                    attr.init_writes.setdefault("<slots>", elt.lineno)

    def _collect_self_writes(self, cls_info: ClassInfo, fn: FunctionInfo) -> None:
        """Phase-1 sweep: every ``self.x`` write/mutation inside one method."""
        init_like = fn.name in INIT_LIKE_METHODS or fn.stripped_name.startswith(RESTORE_PREFIX)
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    self._record_write(cls_info, fn, target, node, init_like)
            elif isinstance(node, ast.AugAssign):
                attr_name = _self_attr(node.target)
                if attr_name is not None:
                    attr = cls_info.attr(attr_name, node.lineno)
                    # += reads then writes: construction-time aug counts as init.
                    writes = attr.init_writes if init_like else attr.other_writes
                    writes.setdefault(fn.name, node.lineno)
            elif isinstance(node, ast.Call):
                self._record_call_mutation(cls_info, fn, node, init_like)

    def _record_write(
        self,
        cls_info: ClassInfo,
        fn: FunctionInfo,
        target: ast.expr,
        stmt: ast.Assign | ast.AnnAssign,
        init_like: bool,
    ) -> None:
        attr_name = _self_attr(target)
        if attr_name is not None:
            attr = cls_info.attr(attr_name, target.lineno)
            writes = attr.init_writes if init_like else attr.other_writes
            writes.setdefault(fn.name, target.lineno)
            if isinstance(stmt, ast.AnnAssign) and attr.annotation is None:
                attr.annotation = stmt.annotation
            ctor = _ctor_name(stmt.value)
            if ctor is not None and ctor not in attr.ctor_names:
                attr.ctor_names.append(ctor)
            return
        # self.x[k] = v / self.x.y = v : mutation of self.x
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            attr_name = _self_attr(target.value)
            if attr_name is not None and not init_like:
                cls_info.attr(attr_name, target.lineno).mutations.setdefault(
                    fn.name, target.lineno
                )

    def _record_call_mutation(
        self,
        cls_info: ClassInfo,
        fn: FunctionInfo,
        call: ast.Call,
        init_like: bool,
    ) -> None:
        if init_like:
            return
        if isinstance(call.func, ast.Attribute) and call.func.attr in MUTATOR_METHODS:
            attr_name = _self_attr(call.func.value)
            if attr_name is not None:
                cls_info.attr(attr_name, call.lineno).mutations.setdefault(
                    fn.name, call.lineno
                )
        name = dotted_name(call.func)
        if name in _ARG_MUTATORS and call.args:
            attr_name = _self_attr(call.args[0])
            if attr_name is not None:
                cls_info.attr(attr_name, call.lineno).mutations.setdefault(
                    fn.name, call.lineno
                )

    # -- phase 2: resolution ----------------------------------------------

    def _resolve(self) -> None:
        for module in self.modules.values():
            for cls_info in module.classes.values():
                cls_info.bases = tuple(
                    base
                    for expr in cls_info.base_exprs
                    if (base := self._resolve_expr_name(module, expr)) is not None
                )
                for attr in cls_info.attrs.values():
                    attr.class_hints = self._attr_hints(module, attr)
        for fn in self.functions.values():
            module = self.modules[fn.module]
            fn.param_classes = self._param_classes(module, fn)
        # ``self.x = param`` inherits the parameter's annotated class —
        # the dominant hint source for injected collaborators.
        for cls_info in self.classes.values():
            for fn in cls_info.methods.values():
                self._propagate_param_hints(cls_info, fn)
        # Function bodies last: scanning needs class hints + param classes.
        for fn in self.functions.values():
            _FunctionScanner(self, fn).run()

    @staticmethod
    def _propagate_param_hints(cls_info: ClassInfo, fn: FunctionInfo) -> None:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
            else:
                continue
            if not isinstance(value, ast.Name):
                continue
            hints = fn.param_classes.get(value.id)
            if not hints:
                continue
            for target in targets:
                attr_name = _self_attr(target)
                if attr_name is None:
                    continue
                attr = cls_info.attrs.get(attr_name)
                if attr is not None:
                    attr.class_hints = tuple(
                        dict.fromkeys([*attr.class_hints, *hints])
                    )

    def _attr_hints(self, module: ModuleInfo, attr: AttrInfo) -> tuple[str, ...]:
        hints: list[str] = []
        for ctor in attr.ctor_names:
            qual = self.resolve(module, ctor)
            if qual is not None and qual not in hints:
                hints.append(qual)
        if attr.annotation is not None:
            for qual in self.resolve_annotation(module, attr.annotation):
                if qual not in hints:
                    hints.append(qual)
        return tuple(hints)

    def _param_classes(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> dict[str, tuple[str, ...]]:
        out: dict[str, tuple[str, ...]] = {}
        a = fn.node.args
        for param in [*a.posonlyargs, *a.args, *a.kwonlyargs]:
            if param.annotation is not None:
                quals = self.resolve_annotation(module, param.annotation)
                if quals:
                    out[param.arg] = quals
        return out

    # -- name resolution ---------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted name used in ``module`` to a canonical qualname."""
        head, _, tail = dotted.partition(".")
        target: str | None = None
        if head in module.imports:
            target = module.imports[head]
        elif head in module.classes or head in module.functions:
            target = f"{module.name}.{head}"
        elif head in module.aliases:
            # Union alias: resolve to its first member (callers needing the
            # full union go through resolve_annotation).
            members = self.resolve_annotation(module, module.aliases[head][0])
            target = members[0] if members else None
        if target is None:
            return None
        return self.canonical(f"{target}.{tail}" if tail else target)

    def canonical(self, qual: str) -> str:
        """Follow re-export chains until the qualname stops changing."""
        for _ in range(12):  # cycle guard
            if qual in self.classes or qual in self.functions or qual in self.modules:
                return qual
            parts = qual.split(".")
            advanced = False
            for cut in range(len(parts) - 1, 0, -1):
                prefix = ".".join(parts[:cut])
                module = self.modules.get(prefix)
                if module is None:
                    continue
                nxt = module.imports.get(parts[cut])
                if nxt is None:
                    break  # defined (or missing) locally: nothing to chase
                qual = ".".join([nxt, *parts[cut + 1 :]])
                advanced = True
                break
            if not advanced:
                return qual
        return qual

    def resolve_annotation(self, module: ModuleInfo, expr: ast.expr) -> tuple[str, ...]:
        """Class qualnames an annotation may denote (unions flattened)."""
        out: list[str] = []
        self._annotation_into(module, expr, out, depth=0)
        return tuple(out)

    def _annotation_into(
        self, module: ModuleInfo, expr: ast.expr, out: list[str], depth: int
    ) -> None:
        if depth > 4:
            return
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                inner = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return
            self._annotation_into(module, inner, out, depth + 1)
            return
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            self._annotation_into(module, expr.left, out, depth + 1)
            self._annotation_into(module, expr.right, out, depth + 1)
            return
        if isinstance(expr, ast.Subscript):
            head = dotted_name(expr.value) or ""
            if head.split(".")[-1] in ("Optional", "Union", "Annotated"):
                self._annotation_into(module, expr.slice, out, depth + 1)
            return  # list[X]/dict[X, Y]: the value is the container, not X
        if isinstance(expr, ast.Tuple):
            for elt in expr.elts:
                self._annotation_into(module, elt, out, depth + 1)
            return
        name = dotted_name(expr)
        if name is None or name in ("None", "NoneType"):
            return
        if name in module.aliases:
            for member in module.aliases[name]:
                self._annotation_into(module, member, out, depth + 1)
            return
        qual = self.resolve(module, name)
        if qual is None and "." in name:
            qual = name  # external dotted (random.Random) used without import? keep
        if qual is not None and qual not in out:
            out.append(qual)

    def _resolve_expr_name(self, module: ModuleInfo, expr: ast.expr) -> str | None:
        name = dotted_name(expr)
        return self.resolve(module, name) if name else None

    # -- graph queries -----------------------------------------------------

    def lookup_method(self, class_qual: str, method: str) -> FunctionInfo | None:
        """Find a method on a class or its (resolved) bases."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls_info = self.classes.get(qual)
            if cls_info is None:
                continue
            if method in cls_info.methods:
                return cls_info.methods[method]
            stack.extend(cls_info.bases)
        return None

    def chain_classes(
        self, start: tuple[str, ...], chain: Sequence[str]
    ) -> tuple[str, ...]:
        """Class qualnames at the end of an attribute chain from ``start``."""
        current = start
        for attr_name in chain:
            nxt: list[str] = []
            for qual in current:
                cls_info = self.classes.get(qual)
                if cls_info is None:
                    continue
                attr = cls_info.attrs.get(attr_name)
                if attr is not None:
                    nxt.extend(h for h in attr.class_hints if h not in nxt)
            current = tuple(nxt)
            if not current:
                return ()
        return current

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()


# -- phase-1 helpers -------------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    """``self.x`` -> ``"x"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _ctor_name(value: ast.expr | None) -> str | None:
    """Constructor dotted name when ``value`` is ``Name(...)`` / ``a.B(...)``."""
    if isinstance(value, ast.Call):
        return dotted_name(value.func)
    return None


def _union_members(expr: ast.expr) -> list[ast.expr]:
    """Flatten ``A | B | C`` into member expressions (empty if not a union)."""
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        left = _union_members(expr.left) or [expr.left]
        right = _union_members(expr.right) or [expr.right]
        if all(dotted_name(m) is not None for m in [*left, *right]):
            return [*left, *right]
    return []


# -- function body scanning (phase 2) --------------------------------------


@dataclass
class _Binding:
    """What the scanner knows about one local name."""

    classes: tuple[str, ...] = ()
    path: tuple[str, tuple[str, ...]] | None = None  # (root, chain)


@dataclass(frozen=True)
class _Path:
    """A resolved attribute path with optional mid-chain class knowledge."""

    root: str
    chain: tuple[str, ...]
    base_classes: tuple[str, ...] = ()
    base_depth: int = 0


class _FunctionScanner:
    """Order-sensitive single pass over one function body.

    Tracks local aliases of parameter/self attribute paths and local
    class hints (constructor calls, annotations, isinstance narrowing),
    and emits the function's :class:`CallSite` and :class:`Access`
    records with those bindings applied.
    """

    def __init__(self, graph: ProgramGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.module = graph.modules[fn.module]
        self.env: dict[str, _Binding] = {}
        self._sync_locks: list[str] = []  # descriptions of held sync locks
        self._async_wrap_depth = 0
        self._discard: ast.expr | None = None  # bare-Expr call being visited
        own = (fn.class_qual,) if fn.class_qual else ()
        for index, param in enumerate(fn.param_names()):
            classes = fn.param_classes.get(param, ())
            if index == 0 and param in ("self", "cls") and own:
                classes = own
            self.env[param] = _Binding(classes=classes, path=(param, ()))

    def run(self) -> None:
        self._stmts(self.fn.node.body)
        self.fn.local_paths = {
            name: b.path for name, b in self.env.items() if b.path is not None
        }
        self.fn.local_classes = {
            name: b.classes for name, b in self.env.items() if b.classes
        }

    # -- statements --------------------------------------------------------

    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are out of this pass's reach
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value)
            self._assign_target(stmt.target, stmt.value, annotation=stmt.annotation)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value)
            self._write_target(stmt.target)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            narrowed = self._isinstance_narrowing(stmt.test)
            saved = {name: self.env.get(name) for name in narrowed}
            for name, classes in narrowed.items():
                old = self.env.get(name)
                self.env[name] = _Binding(
                    classes=classes, path=old.path if old else None
                )
            self._stmts(stmt.body)
            for name, old in saved.items():
                if old is None:
                    self.env.pop(name, None)
                else:
                    self.env[name] = old
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter)
            self._assign_target(stmt.target, None)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                self._discard = stmt.value
            self._expr(stmt.value)
            self._discard = None
            return
        # Fallback: visit any expressions hanging off the statement.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _with(self, stmt: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in stmt.items:
            self._expr(item.context_expr)
            if isinstance(stmt, ast.With):
                lock = self._lock_description(item.context_expr)
                if lock is not None:
                    self._sync_locks.append(lock)
                    pushed += 1
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, None)
        self._stmts(stmt.body)
        for _ in range(pushed):
            self._sync_locks.pop()

    def _lock_description(self, expr: ast.expr) -> str | None:
        """Non-None when ``expr`` acquires a synchronous threading lock."""
        target = expr
        if isinstance(expr, ast.Call):  # with lock.acquire_context() etc.
            target = expr.func
        classes = self._expr_classes(target)
        if not classes and isinstance(target, ast.Attribute):
            classes = self._expr_classes(target.value)
        if any(c in SYNC_LOCK_CLASSES for c in classes):
            return dotted_name(target) or "<lock>"
        return None

    def _isinstance_narrowing(self, test: ast.expr) -> dict[str, tuple[str, ...]]:
        out: dict[str, tuple[str, ...]] = {}
        checks = [test]
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            checks = list(test.values)
        for check in checks:
            if not (
                isinstance(check, ast.Call)
                and isinstance(check.func, ast.Name)
                and check.func.id == "isinstance"
                and len(check.args) == 2
                and isinstance(check.args[0], ast.Name)
            ):
                continue
            kinds = check.args[1]
            exprs = kinds.elts if isinstance(kinds, ast.Tuple) else [kinds]
            quals: list[str] = []
            for expr in exprs:
                name = dotted_name(expr)
                if name is None:
                    continue
                qual = self.graph.resolve(self.module, name) or (
                    name if "." in name else None
                )
                if qual is not None and qual not in quals:
                    quals.append(qual)
            if quals:
                out[check.args[0].id] = tuple(quals)
        return out

    # -- assignments -------------------------------------------------------

    def _assign_target(
        self,
        target: ast.expr,
        value: ast.expr | None,
        annotation: ast.expr | None = None,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self._binding_for(value, annotation)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, None)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._write_target(target)

    def _write_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            return  # aug-assign on a local: binding unchanged
        if isinstance(target, ast.Subscript):
            path = self._path_of(target.value)
            if path is not None:
                self._emit(path, target.lineno, "mutate")
                self._foreign_mark(path, target.lineno, mutation=True)
            else:
                self._hinted_foreign_write(target.value, target.lineno)
                self._expr(target.value)
            self._expr(target.slice)
            return
        if isinstance(target, ast.Attribute):
            path = self._path_of(target)
            if path is not None:
                self._emit(path, target.lineno, "write")
                self._foreign_mark(path, target.lineno, mutation=False)
            else:
                self._hinted_foreign_write(target, target.lineno)
                self._expr(target.value)

    def _foreign_mark(self, path: _Path, line: int, *, mutation: bool) -> None:
        """Record a write/mutation through a path onto the owning class.

        Own-class ``self.x`` effects were already collected in phase 1;
        reconstruction code (``__init__``/``restore*``/``snapshot*``)
        never marks drift.
        """
        if self._in_reconstruction():
            return
        if path.root == "self" and len(path.chain) == 1:
            if mutation:
                cls_info = self.graph.classes.get(self.fn.class_qual or "")
                if cls_info is not None and self.fn.name not in INIT_LIKE_METHODS:
                    cls_info.attr(path.chain[0], line).mutations.setdefault(
                        self.fn.name, line
                    )
            return
        if not path.chain:
            return
        for owner in self._classes_for(path, upto=len(path.chain) - 1):
            cls_info = self.graph.classes.get(owner)
            if cls_info is None:
                continue
            cls_info.attr(path.chain[-1], line).foreign_writes.append(
                (line, self.fn.qualname)
            )

    def _hinted_foreign_write(self, target: ast.expr, line: int) -> None:
        """``obj.attr = ...`` where obj is a class-hinted local (no path).

        Covers ``server = Peer(...); server.health = 1.0`` — a mutation
        of Peer state that no ``self.*`` sweep can see.
        """
        if self._in_reconstruction():
            return
        if not isinstance(target, ast.Attribute):
            return
        for qual in self._expr_classes(target.value):
            cls_info = self.graph.classes.get(qual)
            if cls_info is not None:
                cls_info.attr(target.attr, line).foreign_writes.append(
                    (line, self.fn.qualname)
                )

    def _in_reconstruction(self) -> bool:
        name = self.fn.stripped_name
        return (
            self.fn.name in INIT_LIKE_METHODS
            or name.startswith(RESTORE_PREFIX)
            or name.startswith(SNAPSHOT_PREFIX)
        )

    def _binding_for(
        self, value: ast.expr | None, annotation: ast.expr | None
    ) -> _Binding:
        classes: tuple[str, ...] = ()
        path: tuple[str, tuple[str, ...]] | None = None
        if annotation is not None:
            classes = self.graph.resolve_annotation(self.module, annotation)
        if value is not None:
            vpath = self._path_of(value)
            if vpath is not None:
                path = (vpath.root, vpath.chain)
                if not classes:
                    classes = self._classes_for(vpath)
            elif isinstance(value, ast.Call):
                classes = classes or self._call_result_classes(value)
        return _Binding(classes=classes, path=path)

    def _call_result_classes(self, call: ast.Call) -> tuple[str, ...]:
        if (
            isinstance(call.func, ast.Name)
            and call.func.id == "cls"
            and self.fn.class_qual
        ):
            return (self.fn.class_qual,)
        qual = self._call_target(call)
        if qual is None:
            return ()
        if qual in self.graph.classes:
            return (qual,)
        fn = self.graph.functions.get(qual)
        if fn is not None and fn.node.returns is not None:
            return self.graph.resolve_annotation(
                self.graph.modules[fn.module], fn.node.returns
            )
        if fn is None and "." in qual:
            # External constructor heuristic: random.Random(), socket.socket().
            tail = qual.rsplit(".", 1)[1]
            if tail[:1].isupper() or qual in (RANDOM_CLASS, "socket.socket"):
                return (qual,)
        return ()

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.expr, *, awaited: bool = False) -> None:
        if isinstance(expr, ast.Await):
            if self._sync_locks:
                self.fn.sync_lock_awaits.append((expr.lineno, self._sync_locks[-1]))
            self._expr(expr.value, awaited=True)
            return
        if isinstance(expr, ast.Call):
            self._call(expr, awaited=awaited)
            return
        if isinstance(expr, ast.Attribute):
            path = self._path_of(expr)
            if path is not None:
                self._emit(path, expr.lineno, "read")
                return
            self._expr(expr.value)
            return
        if isinstance(expr, ast.Subscript):
            self._key_read(expr)
            self._expr(expr.value)
            self._expr(expr.slice)
            return
        if isinstance(expr, ast.Name):
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.comprehension):
                self._assign_target(child.target, None)
                self._expr(child.iter)
                for cond in child.ifs:
                    self._expr(cond)

    def _key_read(self, expr: ast.Subscript) -> None:
        if not (
            isinstance(expr.slice, ast.Constant) and isinstance(expr.slice.value, str)
        ):
            return
        path = self._path_of(expr.value)
        if path is not None:
            self._emit(path, expr.lineno, "key_read", key=expr.slice.value)

    def _call(self, call: ast.Call, *, awaited: bool) -> None:
        target = self._call_target(call)
        # param.get("k") / param.pop("k") count as key reads of a state mapping.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("get", "pop")
            and call.args
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, str)
        ):
            path = self._path_of(call.func.value)
            if path is not None:
                self._emit(path, call.lineno, "key_read", key=call.args[0].value)
        if isinstance(call.func, ast.Attribute):
            path = self._path_of(call.func)
            if path is not None:
                self._emit(path, call.lineno, "methodcall")
            else:
                self._expr(call.func.value)
            # In-place mutators through a tracked path: sys._departures.append(x)
            if call.func.attr in MUTATOR_METHODS:
                receiver = self._path_of(call.func.value)
                if receiver is not None and receiver.chain:
                    self._emit(receiver, call.lineno, "mutate")
                    self._foreign_mark(receiver, call.lineno, mutation=True)
        name = dotted_name(call.func)
        if name in _ARG_MUTATORS and call.args:
            victim = self._path_of(call.args[0])
            if victim is not None and victim.chain:
                self._emit(victim, call.lineno, "mutate")
                self._foreign_mark(victim, call.lineno, mutation=True)

        args = tuple(
            self._arg_info(a) for a in call.args if not isinstance(a, ast.Starred)
        )
        keywords = {
            kw.arg: self._arg_info(kw.value)
            for kw in call.keywords
            if kw.arg is not None
        }
        self.fn.calls.append(
            CallSite(
                target=target,
                line=call.lineno,
                col=call.col_offset,
                awaited=awaited,
                async_wrapped=self._async_wrap_depth > 0,
                discarded=call is self._discard,
                args=args,
                keywords=keywords,
            )
        )

        wraps = target is not None and (
            target.startswith("asyncio.")
            or target.endswith((".create_task", ".ensure_future"))
        )
        if wraps:
            self._async_wrap_depth += 1
        for arg in call.args:
            self._expr(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in call.keywords:
            self._expr(kw.value)
        if wraps:
            self._async_wrap_depth -= 1

    def _call_target(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            binding = self.env.get(func.id)
            if binding is not None:
                if binding.classes:
                    return binding.classes[0]  # calling a class object / callable
                return None  # locally bound, class unknown: unresolvable
            return self.graph.resolve(self.module, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        path = self._path_of(func)
        if path is not None:
            receivers = self._classes_for(path, upto=len(path.chain) - 1)
            for qual in receivers:
                found = self.graph.lookup_method(qual, method)
                if found is not None:
                    return found.qualname
            if receivers:
                return f"{receivers[0]}.{method}"
            return None
        base = func.value
        if isinstance(base, ast.Name):
            binding = self.env.get(base.id)
            if binding is not None and binding.classes:
                for qual in binding.classes:
                    found = self.graph.lookup_method(qual, method)
                    if found is not None:
                        return found.qualname
                return f"{binding.classes[0]}.{method}"
        name = dotted_name(func)
        if name is not None:
            resolved = self.graph.resolve(self.module, name)
            if resolved is not None:
                return resolved
            head = name.split(".", 1)[0]
            if head not in self.env:
                return name  # unimported dotted name (builtins etc.): verbatim
        receiver_classes = self._expr_classes(base)
        for qual in receiver_classes:
            found = self.graph.lookup_method(qual, method)
            if found is not None:
                return found.qualname
        if receiver_classes:
            return f"{receiver_classes[0]}.{method}"
        return None

    def _arg_info(self, expr: ast.expr) -> ArgInfo:
        from repro.qa.checks import _unordered_source  # shared heuristic

        info = ArgInfo(text=dotted_name(expr) or type(expr).__name__, node=expr)
        info.unordered = _unordered_source(expr)
        info.rng = self._rng_kind(expr)
        return info

    def _rng_kind(self, expr: ast.expr) -> str | None:
        """Classify an expression's relationship to RNG streams."""
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            resolved = self.graph.resolve(self.module, name) if name else None
            if RANDOM_CLASS in (resolved, name):
                return "named" if (expr.args or expr.keywords) else "unseeded"
            return None
        name = dotted_name(expr)
        if name is None:
            return None
        if name == "random":
            return "global"
        path = self._path_of(expr)
        if path is not None:
            classes = self._classes_for(path)
            leaf = path.chain[-1] if path.chain else path.root
        else:
            binding = self.env.get(name) if "." not in name else None
            classes = binding.classes if binding is not None else ()
            leaf = name.rsplit(".", 1)[-1]
        if RANDOM_CLASS in classes:
            return "named"
        if is_rng_name(leaf):
            # rng-ish name but typed as something else entirely: suspicious.
            return "named" if not classes else "opaque"
        return None

    # -- path and class helpers --------------------------------------------

    def _path_of(self, expr: ast.expr) -> _Path | None:
        """Resolve an expression to a parameter/self-rooted attribute path."""
        chain: list[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            chain.insert(0, node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        binding = self.env.get(node.id)
        if binding is None or binding.path is None:
            return None
        root, prefix = binding.path
        return _Path(
            root=root,
            chain=(*prefix, *chain),
            base_classes=binding.classes,
            base_depth=len(prefix),
        )

    def _classes_for(self, path: _Path, upto: int | None = None) -> tuple[str, ...]:
        """Class qualnames at ``path.chain[:upto]`` (default: full chain)."""
        chain = path.chain if upto is None else path.chain[:upto]
        if path.base_classes and path.base_depth <= len(chain):
            return self.graph.chain_classes(
                path.base_classes, chain[path.base_depth :]
            )
        start = self.fn.param_classes.get(path.root, ())
        binding = self.env.get(path.root)
        if binding is not None and binding.classes:
            start = binding.classes
        if not start:
            return ()
        return self.graph.chain_classes(start, chain)

    def _expr_classes(self, expr: ast.expr) -> tuple[str, ...]:
        path = self._path_of(expr)
        if path is not None:
            return self._classes_for(path)
        if isinstance(expr, ast.Name):
            binding = self.env.get(expr.id)
            if binding is not None:
                return binding.classes
        if isinstance(expr, ast.Call):
            return self._call_result_classes(expr)
        return ()

    def _emit(self, path: _Path, line: int, kind: str, key: str | None = None) -> None:
        self.fn.accesses.append(
            Access(
                root=path.root,
                chain=path.chain,
                line=line,
                kind=kind,
                key=key,
                base_classes=path.base_classes,
                base_depth=path.base_depth,
            )
        )
