"""Rendering of scan results: human text and machine JSON."""

from __future__ import annotations

import json

from repro.qa.engine import ScanResult
from repro.qa.rules import all_rules


def render_human(result: ScanResult) -> str:
    """One finding per line plus a summary footer."""
    lines = [finding.render() for finding in result.findings]
    if result.findings:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"qa: {len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) [{by_rule}]"
        )
    else:
        lines.append(f"qa: clean ({result.files_scanned} file(s) scanned)")
    return "\n".join(lines)


def render_json(result: ScanResult) -> str:
    """Stable-keyed JSON document for tooling."""
    payload = {
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "counts": result.counts_by_rule(),
        "findings": [finding.to_json() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rules() -> str:
    """A table of every registered rule (``qa --list-rules``)."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id} [{rule.severity}] {rule.title}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
