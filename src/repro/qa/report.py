"""Rendering of scan results: human text and machine JSON."""

from __future__ import annotations

import json

from repro.qa.engine import ScanResult
from repro.qa.program_rules import all_program_rules
from repro.qa.rules import all_rules


def render_human(result: ScanResult) -> str:
    """One finding per line plus a summary footer."""
    lines = [finding.render() for finding in result.findings]
    baselined = f", {result.baselined} baselined" if result.baselined else ""
    if result.findings:
        by_rule = ", ".join(
            f"{rule_id}×{count}" for rule_id, count in result.counts_by_rule().items()
        )
        lines.append(
            f"qa: {len(result.findings)} finding(s) in "
            f"{result.files_scanned} file(s) [{by_rule}]{baselined}"
        )
    else:
        lines.append(f"qa: clean ({result.files_scanned} file(s) scanned{baselined})")
    return "\n".join(lines)


def render_json(result: ScanResult) -> str:
    """Stable-keyed JSON document for tooling."""
    payload = {
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "baselined": result.baselined,
        "counts": result.counts_by_rule(),
        "findings": [finding.to_json() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rules() -> str:
    """A table of every registered rule (``qa --list-rules``)."""
    lines = []
    entries: list[tuple[str, str, str, str]] = [
        (r.rule_id, str(r.severity), r.title, r.rationale) for r in all_rules()
    ]
    entries.extend(
        (r.rule_id, str(r.severity), r.title, r.rationale)
        for r in all_program_rules()
    )
    for rule_id, severity, title, rationale in entries:
        lines.append(f"{rule_id} [{severity}] {title}")
        lines.append(f"    {rationale}")
    return "\n".join(lines)
