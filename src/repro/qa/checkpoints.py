"""REP101: checkpoint-completeness over snapshot/restore pairs.

A *checkpoint unit* is a pair of functions that serialize and rebuild
the same object:

* module-level pairs — ``snapshot_*``/``restore_*`` functions (leading
  underscores ignored) whose first parameter is annotated with the same
  in-package class, e.g. ``snapshot_system(system: UUSeeSystem)`` /
  ``restore_into(system: UUSeeSystem, state)``;
* method pairs — a class exposing ``checkpoint_state``/``state`` next
  to ``restore_checkpoint``/``restore`` (classmethod restores count).

For every unit the analyzer computes which attributes the pair *covers*
(read by the snapshot half, written by the restore half, or handed to a
delegated ``.state()``-style method) and diffs that against every
attribute the class mutates after construction — fields the simulation
changes but the checkpoint cannot see are exactly the bugs that make a
resumed run silently diverge from an uninterrupted one.

Coverage is hierarchical: a bare read (``system.peers``) captures the
object wholesale (pickle semantics — nothing below it needs checking);
a method call (``system.engine.clock_state()``) delegates capture to
that object's own contract; a deeper path (``system.trace_server._rng``)
covers only the named field, so the intermediate object's *other*
mutable fields must each be covered too.

The pair's key schema is checked for symmetry as well: top-level string
keys of the snapshot's returned dict literal versus ``state["..."]`` /
``state.get("...")`` reads in the restore half.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.qa.findings import Severity
from repro.qa.program import (
    RESTORE_PREFIX,
    SNAPSHOT_PREFIX,
    Access,
    ClassInfo,
    FunctionInfo,
    ProgramGraph,
)
from repro.qa.program_rules import ProgramFinding, ProgramRule, register_program

#: Method names recognised as the snapshot half of a class unit.
SNAPSHOT_METHODS = ("checkpoint_state", "state")
#: Method names recognised as the restore half of a class unit.
RESTORE_METHODS = ("restore_checkpoint", "restore")

_PARTIAL = 1
_FULL = 2

#: Recursion guard for partial-coverage descent through class hints.
_MAX_DEPTH = 4


@dataclass
class CheckpointUnit:
    """One snapshot/restore pair plus the class it serializes."""

    root_class: ClassInfo
    snapshot: FunctionInfo
    restore: FunctionInfo
    snapshot_root: str  # parameter name holding the object in the snapshot half
    restore_root: str | None  # None for classmethod restores
    restore_state: str | None  # parameter name holding the state mapping

    @property
    def label(self) -> str:
        return f"{self.snapshot.name}/{self.restore.name}"


def discover_units(graph: ProgramGraph) -> list[CheckpointUnit]:
    """Find every checkpoint unit in the graph (deterministic order)."""
    units: list[CheckpointUnit] = []
    for module_name in sorted(graph.modules):
        module = graph.modules[module_name]
        snaps: list[tuple[FunctionInfo, str, str]] = []  # (fn, param, class qual)
        restores: list[tuple[FunctionInfo, str, str]] = []
        for fn_name in sorted(module.functions):
            fn = module.functions[fn_name]
            stripped = fn.stripped_name
            bucket = None
            if stripped.startswith(SNAPSHOT_PREFIX):
                bucket = snaps
            elif stripped.startswith(RESTORE_PREFIX):
                bucket = restores
            if bucket is None:
                continue
            params = fn.param_names()
            if not params:
                continue
            for qual in fn.param_classes.get(params[0], ()):
                if qual in graph.classes:
                    bucket.append((fn, params[0], qual))
                    break
        for snap_fn, snap_param, qual in snaps:
            for restore_fn, restore_param, restore_qual in restores:
                if restore_qual != qual:
                    continue
                params = restore_fn.param_names()
                state_param = next(
                    (p for p in params if p != restore_param), None
                )
                units.append(
                    CheckpointUnit(
                        root_class=graph.classes[qual],
                        snapshot=snap_fn,
                        restore=restore_fn,
                        snapshot_root=snap_param,
                        restore_root=restore_param,
                        restore_state=state_param,
                    )
                )
    for class_qual in sorted(graph.classes):
        cls_info = graph.classes[class_qual]
        snap_fn = next(
            (cls_info.methods[m] for m in SNAPSHOT_METHODS if m in cls_info.methods),
            None,
        )
        restore_fn = next(
            (cls_info.methods[m] for m in RESTORE_METHODS if m in cls_info.methods),
            None,
        )
        if snap_fn is None or restore_fn is None:
            continue
        params = restore_fn.param_names()
        is_classmethod = bool(params) and params[0] == "cls"
        state_param = next((p for p in params if p not in ("self", "cls")), None)
        units.append(
            CheckpointUnit(
                root_class=cls_info,
                snapshot=snap_fn,
                restore=restore_fn,
                snapshot_root="self",
                restore_root=None if is_classmethod else "self",
                restore_state=state_param,
            )
        )
    return units


class _Coverage:
    """Per-class attribute coverage accumulated from both unit halves."""

    def __init__(self, graph: ProgramGraph, root_class: ClassInfo) -> None:
        self.graph = graph
        self.root = root_class
        #: class qualname -> attr name -> _PARTIAL | _FULL
        self.levels: dict[str, dict[str, int]] = {}

    def _bump(self, class_qual: str, attr: str, level: int) -> None:
        per_class = self.levels.setdefault(class_qual, {})
        per_class[attr] = max(per_class.get(attr, 0), level)

    def absorb(self, fn: FunctionInfo, root_param: str) -> None:
        """Fold one function's accesses (rooted at ``root_param``) in."""
        for access in fn.accesses:
            if access.root != root_param or not access.chain:
                continue
            self._absorb_access(access)

    def _absorb_access(self, access: Access) -> None:
        classes: tuple[str, ...] = (self.root.qualname,)
        chain = access.chain
        final = len(chain) - 1
        if access.kind == "methodcall":
            final -= 1  # last element is the method name, not a field
        for depth, attr_name in enumerate(chain):
            if access.base_classes and access.base_depth == depth and depth > 0:
                classes = access.base_classes
            if depth > final:
                break
            level = _FULL if depth == final else _PARTIAL
            for qual in classes:
                if qual in self.graph.classes:
                    self._bump(qual, attr_name, level)
            classes = self.graph.chain_classes(classes, (attr_name,))
            if not classes and not access.base_classes:
                break

    def missing(self) -> Iterator[tuple[ClassInfo, str]]:
        """Yield ``(class, attr)`` for every uncovered mutable attribute."""
        yield from self._check_class(self.root.qualname, set(), 0)

    def _check_class(
        self, class_qual: str, seen: set[str], depth: int
    ) -> Iterator[tuple[ClassInfo, str]]:
        if class_qual in seen or depth > _MAX_DEPTH:
            return
        seen.add(class_qual)
        cls_info = self.graph.classes.get(class_qual)
        if cls_info is None:
            return
        levels = self.levels.get(class_qual, {})
        mutable = {a.name for a in cls_info.mutable_attrs()}
        # Partially-covered attributes are descended into even when the
        # slot itself is immutable: an engine assigned once in __init__
        # still holds mutable state the pair must account for.
        partial = {name for name, level in levels.items() if level == _PARTIAL}
        for attr_name in sorted(mutable | partial):
            attr = cls_info.attrs.get(attr_name)
            if attr is None:
                continue
            level = levels.get(attr_name, 0)
            if level >= _FULL:
                continue
            if level == _PARTIAL:
                # Only named sub-fields are captured: the attribute's own
                # class must have all *its* mutable fields covered too.
                hinted = [h for h in attr.class_hints if h in self.graph.classes]
                for hint in hinted:
                    yield from self._check_class(hint, seen, depth + 1)
                continue
            yield cls_info, attr.name


@dataclass
class _KeySchema:
    """Top-level key usage of one unit's state mapping."""

    captured: dict[str, int] = field(default_factory=dict)  # key -> line
    restored: dict[str, int] = field(default_factory=dict)
    #: False when the snapshot half doesn't return a plain dict literal.
    comparable: bool = True


def _captured_keys(fn: FunctionInfo) -> _KeySchema:
    schema = _KeySchema()
    returns = [
        node.value
        for node in ast.walk(fn.node)
        if isinstance(node, ast.Return) and node.value is not None
    ]
    dicts = [node for node in returns if isinstance(node, ast.Dict)]
    if not dicts or len(dicts) != len(
        [r for r in returns if not (isinstance(r, ast.Constant) and r.value is None)]
    ):
        schema.comparable = False
        return schema
    for node in dicts:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                schema.captured.setdefault(key.value, key.lineno)
            else:
                schema.comparable = False  # **spread / computed key: give up
    return schema


def _consumed_keys(fn: FunctionInfo, state_param: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for access in fn.accesses:
        if access.kind == "key_read" and access.root == state_param and not access.chain:
            if access.key is not None:
                out.setdefault(access.key, access.line)
    return out


def _self_called_methods(
    graph: ProgramGraph, fn: FunctionInfo, seen: set[str]
) -> Iterator[FunctionInfo]:
    """``fn`` plus own-class methods it calls through self (transitively)."""
    if fn.qualname in seen:
        return
    seen.add(fn.qualname)
    yield fn
    if fn.class_qual is None:
        return
    for access in fn.accesses:
        if access.kind != "methodcall" or access.root != "self":
            continue
        if len(access.chain) != 1:
            continue
        callee = graph.lookup_method(fn.class_qual, access.chain[0])
        if callee is not None:
            yield from _self_called_methods(graph, callee, seen)


@register_program
class CheckpointCompletenessRule(ProgramRule):
    """REP101: mutable state invisible to its snapshot/restore pair."""

    rule_id = "REP101"
    title = "mutable field invisible to checkpoint"
    severity = Severity.ERROR
    rationale = (
        "A field the simulation mutates but snapshot/restore never touches "
        "makes a resumed run silently diverge from an uninterrupted one; "
        "every mutable attribute of a checkpointed class must be captured, "
        "restored, or explicitly suppressed with a reason."
    )

    def check(self, graph: ProgramGraph) -> Iterable[ProgramFinding]:
        for unit in discover_units(graph):
            yield from self._check_unit(graph, unit)

    def _check_unit(
        self, graph: ProgramGraph, unit: CheckpointUnit
    ) -> Iterator[ProgramFinding]:
        coverage = _Coverage(graph, unit.root_class)
        snap_fns = list(_self_called_methods(graph, unit.snapshot, set()))
        for fn in snap_fns:
            root = unit.snapshot_root if fn is unit.snapshot else "self"
            coverage.absorb(fn, root)
        if unit.restore_root is not None:
            for fn in _self_called_methods(graph, unit.restore, set()):
                root = unit.restore_root if fn is unit.restore else "self"
                coverage.absorb(fn, root)
        emitted: set[tuple[str, str]] = set()
        for cls_info, attr_name in coverage.missing():
            if (cls_info.qualname, attr_name) in emitted:
                continue
            emitted.add((cls_info.qualname, attr_name))
            attr = cls_info.attrs[attr_name]
            yield (
                cls_info.path,
                attr.first_line or cls_info.node.lineno,
                0,
                f"{cls_info.name}.{attr_name} ({attr.evidence()}) is invisible "
                f"to checkpoint pair {unit.label}; capture it, restore it, or "
                "suppress with a reason",
            )
        yield from self._check_keys(unit)

    def _check_keys(self, unit: CheckpointUnit) -> Iterator[ProgramFinding]:
        if unit.restore_state is None:
            return
        schema = _captured_keys(unit.snapshot)
        schema.restored = _consumed_keys(unit.restore, unit.restore_state)
        if not schema.comparable or not schema.captured:
            return
        for key in sorted(set(schema.captured) - set(schema.restored)):
            yield (
                unit.snapshot.path,
                schema.captured[key],
                0,
                f"checkpoint key '{key}' is captured by {unit.snapshot.name}() "
                f"but never read by {unit.restore.name}(); dead weight or a "
                "missing restore",
            )
        for key in sorted(set(schema.restored) - set(schema.captured)):
            yield (
                unit.restore.path,
                schema.restored[key],
                0,
                f"{unit.restore.name}() reads checkpoint key '{key}' that "
                f"{unit.snapshot.name}() never captures; restore would KeyError "
                "or silently default",
            )
