"""Registry for whole-program (REP1xx) analysis rules.

Per-file rules (:mod:`repro.qa.rules`) receive one ``ast.Module``;
program rules receive the resolved :class:`~repro.qa.program.ProgramGraph`
and may anchor findings in any scanned file.  They share the severity
model, the ``# repro: noqa[RULE]`` suppression syntax, and the REP000
unused-suppression audit with the per-file rules.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable

from repro.qa.findings import Severity
from repro.qa.program import ProgramGraph

#: (path, line, col, message) — the engine attaches rule id and severity.
ProgramFinding = tuple[Path, int, int, str]


class ProgramRule:
    """Base class for whole-program rules (REP1xx)."""

    rule_id: str = ""
    title: str = ""
    severity: Severity = Severity.WARNING
    rationale: str = ""

    def check(self, graph: ProgramGraph) -> Iterable[ProgramFinding]:
        """Yield findings over the whole program graph."""
        raise NotImplementedError


#: rule_id -> singleton instance, in registration order.
_PROGRAM_REGISTRY: dict[str, ProgramRule] = {}


def register_program(cls: type[ProgramRule]) -> type[ProgramRule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    rule = cls()
    if not rule.rule_id or rule.rule_id in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate or empty program rule id: {rule.rule_id!r}")
    _PROGRAM_REGISTRY[rule.rule_id] = rule
    return cls


def all_program_rules() -> tuple[ProgramRule, ...]:
    """Every registered program rule, in rule-id (numeric) order."""
    # Importing the analyzer modules registers their rules.
    import repro.qa.asyncsafety  # noqa: F401
    import repro.qa.checkpoints  # noqa: F401
    import repro.qa.rngflow  # noqa: F401

    return tuple(rule for _, rule in sorted(_PROGRAM_REGISTRY.items()))


def known_program_rule_ids() -> frozenset[str]:
    """The ids of every registered program rule."""
    return frozenset(r.rule_id for r in all_program_rules())
