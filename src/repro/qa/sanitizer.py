"""Runtime determinism sanitizer.

Static rules catch what the AST shows; this module catches what it
can't.  Two tools:

- :func:`deterministic_guard` — a context manager that patches the
  nondeterminism entry points (module-level ``random.*`` draws,
  ``time.time``/``time.time_ns``, ``os.urandom``) to raise
  :class:`NondeterminismError` on touch.  Injected ``random.Random``
  instances keep working — constructing one is the sanctioned path.
- :class:`DrawAudit` — counts and fingerprints every draw made through
  ``random.Random`` (class-level instrumentation of ``random()`` and
  ``getrandbits()``, the two primitives all other methods funnel
  through).  :func:`assert_identical_draws` replays a callable and
  verifies both runs consumed the *same* sequence, which is a far
  stronger property than equal outputs: it fails the moment a code path
  draws conditionally on anything unseeded.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Iterator
from typing import Any, TypeVar

T = TypeVar("T")


class NondeterminismError(RuntimeError):
    """Raised when guarded code touches an unseeded entropy/clock source."""


#: Module-level random functions the guard forbids (they all share the
#: hidden global Mersenne Twister instance).
GUARDED_RANDOM_FNS: tuple[str, ...] = (
    "random",
    "randint",
    "randrange",
    "randbytes",
    "getrandbits",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "seed",
)


def _raiser(qualname: str) -> Callable[..., Any]:
    def forbidden(*_args: Any, **_kwargs: Any) -> Any:
        raise NondeterminismError(
            f"{qualname} called inside deterministic_guard(); simulation "
            "code must draw from an injected random.Random(seed) and read "
            "time from the event engine"
        )

    return forbidden


@contextmanager
def deterministic_guard(
    *,
    wall_clock: bool = True,
    entropy: bool = True,
    allow: Iterable[str] = (),
) -> Iterator[None]:
    """Fail fast on global RNG, wall clock, or OS entropy access.

    ``allow`` lists ``random`` function names to leave untouched (rarely
    needed; prefer fixing the callee).  ``wall_clock=False`` /
    ``entropy=False`` narrow the guard when the code under test
    legitimately timestamps logs or salts filenames.
    """
    allowed = set(allow)
    saved: list[tuple[Any, str, Any]] = []

    def patch(owner: Any, attr: str, qualname: str) -> None:
        saved.append((owner, attr, getattr(owner, attr)))
        setattr(owner, attr, _raiser(qualname))

    for name in GUARDED_RANDOM_FNS:
        if name not in allowed and hasattr(random, name):
            patch(random, name, f"random.{name}")
    if wall_clock:
        patch(time, "time", "time.time")
        patch(time, "time_ns", "time.time_ns")
    if entropy:
        patch(os, "urandom", "os.urandom")
    try:
        yield
    finally:
        for owner, attr, original in reversed(saved):
            setattr(owner, attr, original)


@dataclass(frozen=True)
class DrawSnapshot:
    """Immutable summary of the draws observed by one :class:`DrawAudit`."""

    float_draws: int
    bit_draws: int
    fingerprint: str

    @property
    def total(self) -> int:
        """All primitive draws (floats + getrandbits calls)."""
        return self.float_draws + self.bit_draws


class DrawAudit:
    """Count and fingerprint every ``random.Random`` draw in a block.

    Instrumentation is class-level: assigning Python functions on
    ``random.Random`` shadows the C-implemented ``random()`` and
    ``getrandbits()`` it inherits, so *every* instance (injected,
    seeded generators included) is observed.  ``SystemRandom``
    overrides both primitives and is deliberately not counted — its
    draws are nondeterministic by definition and belong to
    :func:`deterministic_guard`'s jurisdiction.

    Not reentrant: nesting audits would double-count.
    """

    _active: DrawAudit | None = None

    def __init__(self) -> None:
        self.float_draws = 0
        self.bit_draws = 0
        self._hash = hashlib.sha256()
        self._saved: list[tuple[str, Any]] = []

    def __enter__(self) -> DrawAudit:
        if DrawAudit._active is not None:
            raise RuntimeError("DrawAudit is not reentrant")
        DrawAudit._active = self
        orig_random = random.Random.random
        orig_getrandbits = random.Random.getrandbits
        audit = self

        def counting_random(rng: random.Random) -> float:
            value = orig_random(rng)
            audit.float_draws += 1
            audit._hash.update(value.hex().encode("ascii"))
            return value

        def counting_getrandbits(rng: random.Random, k: int) -> int:
            value = orig_getrandbits(rng, k)
            audit.bit_draws += 1
            audit._hash.update(f"{k}:{value:x};".encode("ascii"))
            return value

        self._saved = [("random", orig_random), ("getrandbits", orig_getrandbits)]
        random.Random.random = counting_random  # type: ignore[method-assign]
        random.Random.getrandbits = counting_getrandbits  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc_info: object) -> None:
        for attr, original in self._saved:
            setattr(random.Random, attr, original)
        self._saved = []
        DrawAudit._active = None

    def snapshot(self) -> DrawSnapshot:
        """The draw counts and sequence fingerprint observed so far."""
        return DrawSnapshot(
            float_draws=self.float_draws,
            bit_draws=self.bit_draws,
            fingerprint=self._hash.hexdigest(),
        )


def audited(fn: Callable[[], T]) -> tuple[T, DrawSnapshot]:
    """Run ``fn`` under a fresh :class:`DrawAudit`; return (result, snapshot)."""
    with DrawAudit() as audit:
        result = fn()
    return result, audit.snapshot()


def assert_identical_draws(
    factory: Callable[[], T], *, runs: int = 2
) -> list[tuple[T, DrawSnapshot]]:
    """Replay ``factory`` ``runs`` times; every run must consume the exact
    same RNG draw sequence (count *and* values).

    Raises :class:`NondeterminismError` describing the first divergence.
    Returns the per-run (result, snapshot) pairs so callers can also
    compare outputs.
    """
    if runs < 2:
        raise ValueError("need at least two runs to compare")
    outcomes = [audited(factory) for _ in range(runs)]
    reference = outcomes[0][1]
    for index, (_, snap) in enumerate(outcomes[1:], start=2):
        if snap != reference:
            raise NondeterminismError(
                f"run {index} diverged from run 1: "
                f"{snap.float_draws}/{snap.bit_draws} draws "
                f"(fingerprint {snap.fingerprint[:12]}) vs "
                f"{reference.float_draws}/{reference.bit_draws} "
                f"(fingerprint {reference.fingerprint[:12]}); some code "
                "path is drawing from an unseeded or shared source"
            )
    return outcomes
