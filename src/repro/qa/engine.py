"""Scan orchestration: file discovery, suppressions, unused-noqa audit.

Suppression syntax (line-scoped, reason encouraged)::

    frac = hits / total if total else 0.0  # repro: noqa[REP004] exact sentinel

Multiple ids separate with commas: ``# repro: noqa[REP004,REP005]``.
A suppression that silences nothing is itself reported (REP000) so stale
annotations cannot accumulate; ``fix_unused_suppressions`` rewrites them
away mechanically.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from collections.abc import Iterable, Sequence

from repro.qa.findings import Finding, Severity
from repro.qa.rules import Rule, all_rules, known_rule_ids

#: Pseudo-rules emitted by the engine itself (not in the registry).
UNUSED_SUPPRESSION_ID = "REP000"
PARSE_ERROR_ID = "REP999"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]*)\]")

#: Directories never scanned even when nested under a requested path.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules", ".ruff_cache"})


@dataclass
class ScanResult:
    """Everything one scan produced, ready for rendering or fixing."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: path -> {line -> unused rule ids}; consumed by fix_unused_suppressions.
    unused_suppressions: dict[str, dict[int, set[str]]] = field(default_factory=dict)
    #: Findings matched (and swallowed) by the baseline file, if one applied.
    baselined: int = 0

    @property
    def ok(self) -> bool:
        """True when the tree is clean (CI gate)."""
        return not self.findings

    def counts_by_rule(self) -> dict[str, int]:
        """Finding totals keyed by rule id, sorted by id."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list.

    Sorting keeps the scan (and therefore its output and exit code)
    independent of filesystem enumeration order.
    """
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.add(candidate)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def _parse_suppressions(source: str) -> dict[int, set[str]]:
    """line number -> rule ids suppressed on that line.

    Tokenize-based so the noqa marker only counts inside real comments —
    a docstring *describing* the syntax is not a suppression.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            ids = {
                part.strip().upper()
                for part in match.group(1).split(",")
                if part.strip()
            }
            suppressions.setdefault(token.start[0], set()).update(ids)
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded already
        pass
    return suppressions


@dataclass
class _FileScan:
    """Per-file intermediate state, kept until REP000 can be decided.

    The unused-suppression audit must run *last*: a suppression on a
    line may be consumed by a per-file rule or — only discoverable after
    every file has parsed — by a whole-program REP1xx finding.
    """

    path: PurePath
    tree: ast.Module | None
    findings: list[Finding]
    suppressions: dict[int, set[str]]
    used: set[tuple[int, str]]


def _scan_file(
    source: str, path: PurePath, rules: Iterable[Rule]
) -> _FileScan:
    """Run the per-file rules over one module's text."""
    display = str(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_ERROR_ID,
            severity=Severity.ERROR,
            message=f"could not parse: {exc.msg}",
        )
        return _FileScan(path, None, [finding], {}, set())

    suppressions = _parse_suppressions(source)
    used: set[tuple[int, str]] = set()
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for line, col, message in rule.check(tree, source, path):
            if rule.rule_id in suppressions.get(line, ()):
                used.add((line, rule.rule_id))
                continue
            findings.append(
                Finding(
                    path=display,
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    message=message,
                )
            )
    return _FileScan(path, tree, findings, suppressions, used)


def _unused_findings(
    scan: _FileScan, unaudited: frozenset[str] = frozenset()
) -> tuple[list[Finding], dict[int, set[str]]]:
    """REP000 findings for suppressions nothing consumed.

    ``unaudited`` names rule ids whose rules did not run this scan (the
    REP1xx program analyzers outside ``--program`` mode): a per-file
    pass cannot tell whether their suppressions are stale, so it must
    not flag — or mechanically delete — them.
    """
    findings: list[Finding] = []
    unused: dict[int, set[str]] = {}
    known = known_rule_ids()
    for lineno, ids in scan.suppressions.items():
        for rule_id in ids:
            if (lineno, rule_id) in scan.used or rule_id in unaudited:
                continue
            unused.setdefault(lineno, set()).add(rule_id)
            qualifier = "" if rule_id in known else " (unknown rule)"
            findings.append(
                Finding(
                    path=str(scan.path),
                    line=lineno,
                    col=0,
                    rule_id=UNUSED_SUPPRESSION_ID,
                    severity=Severity.WARNING,
                    message=(
                        f"suppression noqa[{rule_id}]{qualifier} matches no "
                        "finding on this line; remove it (or run --fix-suppressions)"
                    ),
                )
            )
    return findings, unused


def scan_source(
    source: str,
    path: PurePath,
    *,
    rules: Iterable[Rule] | None = None,
) -> tuple[list[Finding], dict[int, set[str]]]:
    """Scan one module's text; returns (findings, unused suppressions).

    Exposed separately from :func:`scan_paths` so tests can lint
    snippets under any pretend path (rule scoping is path-sensitive).
    Per-file rules only — the REP1xx program pass needs every file.
    """
    from repro.qa.program_rules import known_program_rule_ids

    scan = _scan_file(source, path, tuple(rules) if rules is not None else all_rules())
    findings, unused = _unused_findings(scan, known_program_rule_ids())
    return [*scan.findings, *findings], unused


def _run_program_rules(scans: list[_FileScan]) -> list[Finding]:
    """Build the program graph from parsed files and run the REP1xx rules.

    Suppressions work exactly as for per-file rules: a matching
    ``# repro: noqa[REP1xx]`` on the finding's line consumes it (and is
    marked used so REP000 stays quiet).
    """
    from repro.qa.program import ProgramGraph
    from repro.qa.program_rules import all_program_rules

    by_display: dict[str, _FileScan] = {str(scan.path): scan for scan in scans}
    parsed = [
        (Path(str(scan.path)), scan.tree) for scan in scans if scan.tree is not None
    ]
    graph = ProgramGraph.build(parsed)
    findings: list[Finding] = []
    for rule in all_program_rules():
        for fpath, line, col, message in rule.check(graph):
            display = str(fpath)
            scan = by_display.get(display)
            if scan is not None and rule.rule_id in scan.suppressions.get(line, ()):
                scan.used.add((line, rule.rule_id))
                continue
            findings.append(
                Finding(
                    path=display,
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    message=message,
                )
            )
    return findings


def scan_paths(
    paths: Sequence[Path],
    *,
    rules: Iterable[Rule] | None = None,
    program: bool = False,
) -> ScanResult:
    """Scan every Python file under ``paths``; findings sorted by location.

    With ``program=True`` the whole-program REP1xx analyzers run over
    the same parse trees after the per-file rules.
    """
    result = ScanResult()
    rule_set = tuple(rules) if rules is not None else all_rules()
    scans: list[_FileScan] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        scan = _scan_file(source, file_path, rule_set)
        scans.append(scan)
        result.findings.extend(scan.findings)
        result.files_scanned += 1
    if program:
        result.findings.extend(_run_program_rules(scans))
        unaudited: frozenset[str] = frozenset()
    else:
        from repro.qa.program_rules import known_program_rule_ids

        unaudited = known_program_rule_ids()
    for scan in scans:
        findings, unused = _unused_findings(scan, unaudited)
        result.findings.extend(findings)
        if unused:
            result.unused_suppressions[str(scan.path)] = unused
    result.findings.sort()
    return result


def _strip_suppression(line: str, drop: set[str]) -> str:
    """Remove ``drop`` ids from the line's noqa comment (whole comment if empty)."""
    match = _NOQA_RE.search(line)
    if match is None:
        return line
    kept = [
        part.strip()
        for part in match.group(1).split(",")
        if part.strip() and part.strip().upper() not in drop
    ]
    if kept:
        replacement = line[match.start() : match.end()]
        replacement = replacement[: replacement.index("[")] + "[" + ",".join(kept) + "]"
        return line[: match.start()] + replacement + line[match.end() :]
    # comment now empty: drop it and any reason text that followed it
    return line[: match.start()].rstrip()


def fix_unused_suppressions(result: ScanResult) -> int:
    """Rewrite files to remove the unused suppressions in ``result``.

    Returns the number of suppression ids removed.
    """
    removed = 0
    for path_str, by_line in result.unused_suppressions.items():
        path = Path(path_str)
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        for lineno, ids in by_line.items():
            raw = lines[lineno - 1]
            ending = raw[len(raw.rstrip("\r\n")) :]
            fixed = _strip_suppression(raw.rstrip("\r\n"), ids)
            lines[lineno - 1] = fixed + ending
            removed += len(ids)
        path.write_text("".join(lines), encoding="utf-8")
    return removed
