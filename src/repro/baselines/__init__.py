"""Comparison baselines from the P2P topology literature.

The paper frames every finding against prior file-sharing topology
studies: early Gnutella's power-law degree distributions and strong
small-world clustering [2, 12, 15], and modern two-tier Gnutella's
spiked (non-power-law) degree distribution reported by Stutzbach et
al. [17].  This subpackage generates synthetic snapshots of both
generations so the comparisons in Sec. 4.2/4.3 can be made
quantitatively against the simulated UUSee topologies.
"""

from repro.baselines.gnutella import (
    GnutellaConfig,
    legacy_gnutella_snapshot,
    modern_gnutella_snapshot,
)

__all__ = [
    "GnutellaConfig",
    "legacy_gnutella_snapshot",
    "modern_gnutella_snapshot",
]
