"""Synthetic Gnutella overlay snapshots (the paper's comparison points).

Two generations are modelled:

- **legacy Gnutella** (flat, early-2000s): preferential attachment
  produces the power-law degree distribution reported by Ripeanu et
  al. and Jovanovic et al. — the distribution the paper shows UUSee
  does *not* have;
- **modern Gnutella** (two-tier, as crawled by Stutzbach et al. with
  Cruiser): ultrapeers hold ~30 ultrapeer neighbours (a spike, since
  the client tops up to a target) plus leaves; leaves attach to ~3
  ultrapeers.  Its ultrapeer degree distribution has 'a spike around
  30' and the network is a weaker small world than legacy Gnutella.

Both generators are seeded and return :class:`repro.graph.Graph`
objects, so every metric in :mod:`repro.graph` applies directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graph.digraph import Graph


@dataclass(frozen=True)
class GnutellaConfig:
    """Size/shape parameters for the synthetic snapshots."""

    num_peers: int = 2_000
    # legacy (flat) generation
    legacy_links_per_join: int = 3
    # modern (two-tier) generation
    ultrapeer_fraction: float = 0.16
    ultrapeer_target_degree: int = 30
    leaf_parents: int = 3
    seed: int = 0


def legacy_gnutella_snapshot(config: GnutellaConfig | None = None) -> Graph:
    """Flat Gnutella via preferential attachment (power-law degrees).

    Barabasi-Albert style: each joining peer links to ``m`` existing
    peers chosen proportionally to their current degree.
    """
    cfg = config or GnutellaConfig()
    rng = random.Random(cfg.seed)
    m = cfg.legacy_links_per_join
    graph = Graph()
    # seed clique of m+1 peers
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            graph.add_edge(i, j)
    # repeated-endpoint list implements preferential attachment in O(1)
    endpoints: list[int] = []
    for u, v in graph.edges():
        endpoints.extend((u, v))
    for new in range(m + 1, cfg.num_peers):
        chosen: set[int] = set()
        while len(chosen) < m:
            chosen.add(endpoints[rng.randrange(len(endpoints))])
        for target in chosen:
            graph.add_edge(new, target)
            endpoints.extend((new, target))
    return graph


def modern_gnutella_snapshot(config: GnutellaConfig | None = None) -> Graph:
    """Two-tier Gnutella: ultrapeer mesh with a ~30-neighbour spike.

    Ultrapeers top up to ``ultrapeer_target_degree`` ultrapeer
    neighbours (with some randomness in how full they get, as in
    crawled snapshots); each leaf attaches to ``leaf_parents``
    ultrapeers chosen uniformly.
    """
    cfg = config or GnutellaConfig()
    rng = random.Random(cfg.seed + 1)
    num_ultra = max(cfg.leaf_parents + 1, int(cfg.num_peers * cfg.ultrapeer_fraction))
    ultrapeers = list(range(num_ultra))
    graph = Graph()
    for u in ultrapeers:
        graph.add_node(u)
    # each ultrapeer opens connections until near the target degree;
    # later peers find earlier ones already full, producing the
    # sub-spike shoulder crawls observe
    for u in ultrapeers:
        want = cfg.ultrapeer_target_degree - int(rng.random() * 4)
        attempts = 0
        while graph.degree(u) < want and attempts < 20 * want:
            attempts += 1
            v = ultrapeers[rng.randrange(num_ultra)]
            if v == u or graph.has_edge(u, v):
                continue
            if graph.degree(v) >= cfg.ultrapeer_target_degree + 4:
                continue
            graph.add_edge(u, v)
    # leaves
    for leaf in range(num_ultra, cfg.num_peers):
        parents = rng.sample(ultrapeers, cfg.leaf_parents)
        for p in parents:
            graph.add_edge(leaf, p)
    return graph


def ultrapeer_ids(config: GnutellaConfig | None = None) -> range:
    """The vertex ids that are ultrapeers in the modern snapshot."""
    cfg = config or GnutellaConfig()
    num_ultra = max(cfg.leaf_parents + 1, int(cfg.num_peers * cfg.ultrapeer_fraction))
    return range(num_ultra)
