"""k-core decomposition.

The k-core (maximal subgraph where every vertex keeps degree >= k)
exposes the stable backbone of a churning overlay: the paper's 'stable
peers constitute a backbone' claim predicts a deep, large core.  Linear
time via the Batagelj-Zaversnik bucket algorithm.
"""

from __future__ import annotations

from repro.graph.digraph import Graph, Node


def core_numbers(graph: Graph) -> dict[Node, int]:
    """Core number of every vertex (Batagelj-Zaversnik)."""
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    buckets: list[list[Node]] = [[] for _ in range(max_degree + 1)]
    for node, degree in degrees.items():
        buckets[degree].append(node)
    core: dict[Node, int] = {}
    current = dict(degrees)
    processed: set[Node] = set()
    k = 0
    for degree in range(max_degree + 1):
        bucket = buckets[degree]
        while bucket:
            node = bucket.pop()
            if node in processed or current[node] != degree:
                continue
            k = max(k, degree)
            core[node] = k
            processed.add(node)
            for nbr in graph.neighbors(node):
                if nbr in processed:
                    continue
                d = current[nbr]
                if d > degree:
                    current[nbr] = d - 1
                    buckets[d - 1].append(nbr)
    # vertices may have been re-bucketed below their final position;
    # sweep any stragglers (can only happen via duplicate bucket entries)
    for node in degrees:
        if node not in core:
            core[node] = current[node]
    return core


def k_core(graph: Graph, k: int) -> Graph:
    """The k-core subgraph (possibly empty)."""
    cores = core_numbers(graph)
    members = [node for node, c in cores.items() if c >= k]
    return graph.subgraph(members)


def degeneracy(graph: Graph) -> int:
    """The largest k for which a non-empty k-core exists."""
    cores = core_numbers(graph)
    return max(cores.values()) if cores else 0
