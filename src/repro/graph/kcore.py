"""k-core decomposition.

The k-core (maximal subgraph where every vertex keeps degree >= k)
exposes the stable backbone of a churning overlay: the paper's 'stable
peers constitute a backbone' claim predicts a deep, large core.  Linear
time via the Batagelj-Zaversnik bucket algorithm, run over the frozen
CSR view so the inner peel loop indexes flat integer arrays.
"""

from __future__ import annotations

from repro.graph.compact import CompactGraph
from repro.graph.digraph import Graph, Node


def core_numbers(graph: Graph | CompactGraph) -> dict[Node, int]:
    """Core number of every vertex (Batagelj-Zaversnik)."""
    compact = graph.freeze()
    n = len(compact.labels)
    if n == 0:
        return {}
    indptr = compact.indptr
    indices = compact.indices
    degrees = [indptr[i + 1] - indptr[i] for i in range(n)]
    max_degree = max(degrees)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for i, degree in enumerate(degrees):
        buckets[degree].append(i)
    core = [-1] * n
    current = list(degrees)
    k = 0
    for degree in range(max_degree + 1):
        bucket = buckets[degree]
        while bucket:
            node = bucket.pop()
            if core[node] >= 0 or current[node] != degree:
                continue
            k = max(k, degree)
            core[node] = k
            for nbr in indices[indptr[node] : indptr[node + 1]]:
                if core[nbr] >= 0:
                    continue
                d = current[nbr]
                if d > degree:
                    current[nbr] = d - 1
                    buckets[d - 1].append(nbr)
    # vertices may have been re-bucketed below their final position;
    # sweep any stragglers (can only happen via duplicate bucket entries)
    labels = compact.labels
    return {
        labels[i]: (core[i] if core[i] >= 0 else current[i]) for i in range(n)
    }


def k_core(graph: Graph | CompactGraph, k: int) -> Graph:
    """The k-core subgraph (possibly empty)."""
    cores = core_numbers(graph)
    members = [node for node, c in cores.items() if c >= k]
    mutable = graph if isinstance(graph, Graph) else graph.thaw()
    return mutable.subgraph(members)


def degeneracy(graph: Graph | CompactGraph) -> int:
    """The largest k for which a non-empty k-core exists."""
    cores = core_numbers(graph)
    return max(cores.values()) if cores else 0
