"""Degree assortativity and attribute mixing.

Topology-measurement studies routinely report whether high-degree peers
attach to other high-degree peers (assortative, r > 0) or to low-degree
ones (disassortative, r < 0) — Internet-like graphs are typically
disassortative, social graphs assortative.  The attribute variant
quantifies ISP mixing: the same phenomenon Fig. 6 measures per peer,
summarised as one Newman coefficient.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.graph.digraph import Graph, Node
from repro.stats import near_zero


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of endpoint degrees over undirected edges.

    Returns 0.0 for graphs with fewer than 2 edges or zero degree
    variance (e.g. regular graphs).
    """
    xs: list[int] = []
    ys: list[int] = []
    for u, v in graph.edges():
        du, dv = graph.degree(u), graph.degree(v)
        # count each edge in both orientations so the measure is symmetric
        xs.extend((du, dv))
        ys.extend((dv, du))
    n = len(xs)
    if n < 4:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if near_zero(var_x) or near_zero(var_y):
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def attribute_mixing(
    graph: Graph, attribute: Callable[[Node], object]
) -> float:
    """Newman's assortativity coefficient for a categorical attribute.

    r = (tr(e) - sum(a_i b_i)) / (1 - sum(a_i b_i)) over the edge
    mixing matrix e; 1 means perfectly assortative (edges only inside
    groups), 0 random mixing, negative disassortative.  Vertices whose
    attribute is None are skipped.
    """
    categories: dict[object, int] = {}
    counts: dict[tuple[int, int], int] = {}
    total = 0
    for u, v in graph.edges():
        cu, cv = attribute(u), attribute(v)
        if cu is None or cv is None:
            continue
        iu = categories.setdefault(cu, len(categories))
        iv = categories.setdefault(cv, len(categories))
        # symmetric: count both orientations
        counts[(iu, iv)] = counts.get((iu, iv), 0) + 1
        counts[(iv, iu)] = counts.get((iv, iu), 0) + 1
        total += 2
    if total == 0 or len(categories) < 2:
        return 0.0
    k = len(categories)
    e = [[counts.get((i, j), 0) / total for j in range(k)] for i in range(k)]
    trace = sum(e[i][i] for i in range(k))
    a = [sum(row) for row in e]
    b = [sum(e[i][j] for i in range(k)) for j in range(k)]
    ab = sum(x * y for x, y in zip(a, b))
    if ab >= 1.0:
        return 0.0
    return (trace - ab) / (1.0 - ab)
