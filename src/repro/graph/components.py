"""Directed connectivity: strongly connected components and reach.

The paper's reciprocity analysis implies a strongly-connected mesh core
(bilateral links form 2-cycles); these utilities let experiments verify
that directly.  Tarjan's algorithm is implemented iteratively — the
stable-peer graphs are large enough to overflow Python's recursion
limit otherwise.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph, Node


def strongly_connected_components(graph: DiGraph) -> list[set[Node]]:
    """All SCCs, largest first (iterative Tarjan)."""
    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[set[Node]] = []
    counter = 0

    for root in list(graph.nodes()):
        if root in index_of:
            continue
        # work stack of (node, iterator over successors)
        work: list[tuple[Node, list[Node], int]] = [
            (root, sorted(graph.successors(root), key=repr), 0)
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs, i = work.pop()
            advanced = False
            while i < len(succs):
                nxt = succs[i]
                i += 1
                if nxt not in index_of:
                    work.append((node, succs, i))
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, sorted(graph.successors(nxt), key=repr), 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    components.sort(key=len, reverse=True)
    return components


def largest_scc_fraction(graph: DiGraph) -> float:
    """Fraction of vertices in the largest SCC (0.0 for empty graphs)."""
    if graph.num_nodes == 0:
        return 0.0
    components = strongly_connected_components(graph)
    return len(components[0]) / graph.num_nodes


def condensation_size(graph: DiGraph) -> int:
    """Number of SCCs (vertices of the condensation DAG)."""
    return len(strongly_connected_components(graph))
