"""Directed connectivity: strongly connected components and reach.

The paper's reciprocity analysis implies a strongly-connected mesh core
(bilateral links form 2-cycles); these utilities let experiments verify
that directly.  Tarjan's algorithm is implemented iteratively — the
stable-peer graphs are large enough to overflow Python's recursion
limit otherwise.  The traversal runs over the frozen CSR view, whose
sorted integer successor rows make the visit order deterministic
without per-vertex ``repr`` sorting.
"""

from __future__ import annotations

from repro.graph.compact import CompactDigraph
from repro.graph.digraph import DiGraph, Node


def strongly_connected_components(
    graph: DiGraph | CompactDigraph,
) -> list[set[Node]]:
    """All SCCs, largest first (iterative Tarjan)."""
    compact = graph.freeze()
    n = len(compact.labels)
    indptr = compact.out_indptr
    indices = compact.out_indices
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = bytearray(n)
    stack: list[int] = []
    components: list[set[Node]] = []
    labels = compact.labels
    counter = 0

    for root in range(n):
        if index_of[root] >= 0:
            continue
        # work stack of (node, position in its CSR successor row)
        work: list[tuple[int, int]] = [(root, indptr[root])]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while work:
            node, i = work.pop()
            end = indptr[node + 1]
            advanced = False
            while i < end:
                nxt = indices[i]
                i += 1
                if index_of[nxt] < 0:
                    work.append((node, i))
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack[nxt] = 1
                    work.append((nxt, indptr[nxt]))
                    advanced = True
                    break
                if on_stack[nxt]:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component: set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    component.add(labels[w])
                    if w == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    components.sort(key=len, reverse=True)
    return components


def largest_scc_fraction(graph: DiGraph | CompactDigraph) -> float:
    """Fraction of vertices in the largest SCC (0.0 for empty graphs)."""
    if graph.num_nodes == 0:
        return 0.0
    components = strongly_connected_components(graph)
    return len(components[0]) / graph.num_nodes


def condensation_size(graph: DiGraph | CompactDigraph) -> int:
    """Number of SCCs (vertices of the condensation DAG)."""
    return len(strongly_connected_components(graph))
