"""Frozen CSR-style graph views: the analytics fast path.

``Graph``/``DiGraph`` (dict-of-sets) remain the *construction*
containers — snapshot assembly mutates them freely.  Analytics then
calls ``freeze()`` once per snapshot and runs every metric kernel
against the resulting compact view, which stores adjacency as flat
integer arrays in compressed-sparse-row form: the sorted neighbour
*indices* of vertex ``i`` occupy ``indices[indptr[i]:indptr[i+1]]``.
Kernels therefore index dense lists instead of hashing node labels —
severalfold faster in CPython and far smaller than a dict of sets,
the same representation shift that made crawl-scale topology studies
(Gnutella mapping, locality-aware streaming analyses) tractable.

A compact view is immutable by contract: it shares no state with the
graph it was frozen from, its vertex order is the construction
insertion order of the source graph (hence deterministic), and derived
structures (neighbour sets, edge keys) are cached on first use.
``freeze()`` on an already-compact view returns it unchanged, so
kernels can normalise their input with a single call.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterator

from repro.graph.digraph import DiGraph, Graph, Node


def _csr_rows(rows: list[list[int]]) -> tuple[array[int], array[int]]:
    """Pack per-vertex sorted index rows into (indptr, indices) arrays."""
    indptr = array("l", [0] * (len(rows) + 1))
    flat: list[int] = []
    for i, row in enumerate(rows):
        flat.extend(row)
        indptr[i + 1] = len(flat)
    return indptr, array("l", flat)


class CompactGraph:
    """Frozen CSR view of an undirected :class:`Graph`.

    Exposes the read surface metric kernels need, label-based like the
    mutable class plus an index-based API (``*_by_index``,
    :attr:`indptr`/:attr:`indices`) that the hot kernels use directly.
    """

    __slots__ = (
        "labels",
        "index_of",
        "indptr",
        "indices",
        "_nbr_sets",
        "_adj_lists",
    )

    def __init__(
        self,
        labels: tuple[Node, ...],
        indptr: array[int],
        indices: array[int],
    ) -> None:
        self.labels = labels
        self.index_of: dict[Node, int] = {
            label: i for i, label in enumerate(labels)
        }
        self.indptr = indptr
        self.indices = indices
        self._nbr_sets: list[frozenset[int]] | None = None
        self._adj_lists: list[list[int]] | None = None

    @classmethod
    def from_graph(cls, graph: Graph) -> CompactGraph:
        """Freeze a mutable graph (vertex order = insertion order)."""
        adj = graph._adj
        labels = tuple(adj)
        index = {label: i for i, label in enumerate(labels)}
        idx = index.__getitem__
        rows = [sorted(map(idx, row)) for row in adj.values()]
        indptr, indices = _csr_rows(rows)
        return cls(labels, indptr, indices)

    # -- structure ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Vertex count."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return len(self.indices) // 2

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, node: Node) -> bool:
        return node in self.index_of

    def nodes(self) -> Iterator[Node]:
        """Iterate over vertex labels in frozen (insertion) order."""
        return iter(self.labels)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Each undirected edge exactly once (lower index endpoint first)."""
        labels = self.labels
        indptr = self.indptr
        indices = self.indices
        for i in range(len(labels)):
            for j in indices[indptr[i] : indptr[i + 1]]:
                if i < j:
                    yield (labels[i], labels[j])

    def degree(self, node: Node) -> int:
        """Number of neighbours of ``node``."""
        return self.degree_by_index(self.index_of[node])

    def degree_by_index(self, i: int) -> int:
        """Number of neighbours of vertex index ``i``."""
        return self.indptr[i + 1] - self.indptr[i]

    def neighbors(self, node: Node) -> tuple[Node, ...]:
        """Neighbour labels of ``node`` (ascending index order)."""
        i = self.index_of[node]
        labels = self.labels
        return tuple(
            labels[j]
            for j in self.indices[self.indptr[i] : self.indptr[i + 1]]
        )

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the undirected edge {u, v} exists."""
        iu = self.index_of.get(u)
        iv = self.index_of.get(v)
        if iu is None or iv is None:
            return False
        return self.has_edge_index(iu, iv)

    def has_edge_index(self, i: int, j: int) -> bool:
        """True when an edge links vertex indices ``i`` and ``j``."""
        lo, hi = self.indptr[i], self.indptr[i + 1]
        pos = bisect_left(self.indices, j, lo, hi)
        return pos < hi and self.indices[pos] == j

    def density(self) -> float:
        """Fraction of possible edges present (0 for graphs with <2 nodes)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges / (n * (n - 1))

    # -- derived caches ----------------------------------------------------

    def neighbor_sets(self) -> list[frozenset[int]]:
        """Per-vertex frozenset of neighbour indices (cached)."""
        if self._nbr_sets is None:
            indptr = self.indptr
            indices = self.indices
            self._nbr_sets = [
                frozenset(indices[indptr[i] : indptr[i + 1]])
                for i in range(len(self.labels))
            ]
        return self._nbr_sets

    def adjacency_lists(self) -> list[list[int]]:
        """Per-vertex neighbour-index lists (cached).

        Plain nested lists iterate faster than repeated CSR array
        slicing in CPython, so traversal kernels that touch every edge
        per BFS source (path sampling, components) read these.
        """
        if self._adj_lists is None:
            indptr = self.indptr
            all_indices = self.indices.tolist()
            self._adj_lists = [
                all_indices[indptr[i] : indptr[i + 1]]
                for i in range(len(self.labels))
            ]
        return self._adj_lists

    # -- conversions -------------------------------------------------------

    def freeze(self) -> CompactGraph:
        """Already frozen; returns self (lets kernels normalise input)."""
        return self

    def thaw(self) -> Graph:
        """A new mutable :class:`Graph` with the same vertices and edges."""
        graph = Graph()
        for label in self.labels:
            graph.add_node(label)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph


class CompactDigraph:
    """Frozen CSR view of a :class:`DiGraph` (out- and in-adjacency)."""

    __slots__ = (
        "labels",
        "index_of",
        "out_indptr",
        "out_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_keys",
        "_succ_sets",
    )

    def __init__(
        self,
        labels: tuple[Node, ...],
        out_indptr: array[int],
        out_indices: array[int],
        in_indptr: array[int] | None = None,
        in_indices: array[int] | None = None,
    ) -> None:
        self.labels = labels
        self.index_of: dict[Node, int] = {
            label: i for i, label in enumerate(labels)
        }
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self._in_indptr = in_indptr
        self._in_indices = in_indices
        self._edge_keys: set[int] | None = None
        self._succ_sets: list[frozenset[int]] | None = None

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> CompactDigraph:
        """Freeze a mutable digraph (vertex order = insertion order)."""
        succ = graph._succ
        labels = tuple(succ)
        index = {label: i for i, label in enumerate(labels)}
        idx = index.__getitem__
        out_rows = [sorted(map(idx, row)) for row in succ.values()]
        out_indptr, out_indices = _csr_rows(out_rows)
        return cls(labels, out_indptr, out_indices)

    # In-adjacency is derived lazily: the hot per-window metrics only
    # read out-edges, so freeze() skips the transpose until a kernel
    # (in-degree, predecessors, undirected collapse) first needs it.

    def _build_in(self) -> None:
        out_indptr = self.out_indptr
        out_indices = self.out_indices
        # Visiting sources in ascending index order appends each in-row
        # already sorted — no per-row sort.
        in_rows: list[list[int]] = [[] for _ in self.labels]
        for u in range(len(self.labels)):
            for v in out_indices[out_indptr[u] : out_indptr[u + 1]]:
                in_rows[v].append(u)
        self._in_indptr, self._in_indices = _csr_rows(in_rows)

    @property
    def in_indptr(self) -> array[int]:
        """CSR row-pointer array of the in-adjacency (built on demand)."""
        if self._in_indptr is None:
            self._build_in()
            assert self._in_indptr is not None
        return self._in_indptr

    @property
    def in_indices(self) -> array[int]:
        """CSR index array of the in-adjacency (built on demand)."""
        if self._in_indices is None:
            self._build_in()
            assert self._in_indices is not None
        return self._in_indices

    # -- structure ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Vertex count."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Directed edge count."""
        return len(self.out_indices)

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, node: Node) -> bool:
        return node in self.index_of

    def nodes(self) -> Iterator[Node]:
        """Iterate over vertex labels in frozen (insertion) order."""
        return iter(self.labels)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Every directed edge as a (u, v) label pair."""
        labels = self.labels
        indptr = self.out_indptr
        indices = self.out_indices
        for i in range(len(labels)):
            for j in indices[indptr[i] : indptr[i + 1]]:
                yield (labels[i], labels[j])

    def successors(self, node: Node) -> tuple[Node, ...]:
        """Out-neighbour labels of ``node`` (ascending index order)."""
        i = self.index_of[node]
        labels = self.labels
        return tuple(
            labels[j]
            for j in self.out_indices[
                self.out_indptr[i] : self.out_indptr[i + 1]
            ]
        )

    def predecessors(self, node: Node) -> tuple[Node, ...]:
        """In-neighbour labels of ``node`` (ascending index order)."""
        i = self.index_of[node]
        labels = self.labels
        return tuple(
            labels[j]
            for j in self.in_indices[self.in_indptr[i] : self.in_indptr[i + 1]]
        )

    def out_degree(self, node: Node) -> int:
        """Number of out-neighbours of ``node``."""
        return self.out_degree_by_index(self.index_of[node])

    def in_degree(self, node: Node) -> int:
        """Number of in-neighbours of ``node``."""
        return self.in_degree_by_index(self.index_of[node])

    def out_degree_by_index(self, i: int) -> int:
        """Out-degree of vertex index ``i``."""
        return self.out_indptr[i + 1] - self.out_indptr[i]

    def in_degree_by_index(self, i: int) -> int:
        """In-degree of vertex index ``i``."""
        return self.in_indptr[i + 1] - self.in_indptr[i]

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the directed edge ``u -> v`` exists."""
        iu = self.index_of.get(u)
        iv = self.index_of.get(v)
        if iu is None or iv is None:
            return False
        return self.has_edge_index(iu, iv)

    def has_edge_index(self, i: int, j: int) -> bool:
        """True when the directed edge ``i -> j`` exists (vertex indices)."""
        return i * len(self.labels) + j in self.edge_keys()

    def density(self) -> float:
        """Ratio of existing to possible directed edges."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return self.num_edges / (n * (n - 1))

    # -- derived caches ----------------------------------------------------

    def edge_keys(self) -> set[int]:
        """Every edge as the integer key ``u_index * n + v_index`` (cached).

        One int-set membership test replaces the two dict lookups plus a
        set probe the mutable class pays per ``has_edge`` — the kernel
        speedup behind reciprocity and the dyad/triangle censuses.
        """
        if self._edge_keys is None:
            n = len(self.labels)
            indptr = self.out_indptr
            indices = self.out_indices
            keys: set[int] = set()
            for i in range(n):
                base = i * n
                for j in indices[indptr[i] : indptr[i + 1]]:
                    keys.add(base + j)
            self._edge_keys = keys
        return self._edge_keys

    def succ_sets(self) -> list[frozenset[int]]:
        """Per-vertex frozenset of successor indices (cached)."""
        if self._succ_sets is None:
            indptr = self.out_indptr
            indices = self.out_indices
            self._succ_sets = [
                frozenset(indices[indptr[i] : indptr[i + 1]])
                for i in range(len(self.labels))
            ]
        return self._succ_sets

    # -- conversions -------------------------------------------------------

    def freeze(self) -> CompactDigraph:
        """Already frozen; returns self (lets kernels normalise input)."""
        return self

    def thaw(self) -> DiGraph:
        """A new mutable :class:`DiGraph` with the same vertices and edges."""
        graph = DiGraph()
        for label in self.labels:
            graph.add_node(label)
        for u, v in self.edges():
            graph.add_edge(u, v)
        return graph

    def to_undirected_compact(self) -> CompactGraph:
        """Collapse edge direction straight into a :class:`CompactGraph`.

        Equivalent to ``thaw().to_undirected().freeze()`` but built in
        one pass from the CSR arrays, skipping both mutable graphs.
        """
        n = len(self.labels)
        out_indptr, out_indices = self.out_indptr, self.out_indices
        in_indptr, in_indices = self.in_indptr, self.in_indices
        rows = [
            sorted(
                set(out_indices[out_indptr[i] : out_indptr[i + 1]])
                | set(in_indices[in_indptr[i] : in_indptr[i + 1]])
            )
            for i in range(n)
        ]
        indptr, indices = _csr_rows(rows)
        return CompactGraph(self.labels, indptr, indices)
