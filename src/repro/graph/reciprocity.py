"""Edge reciprocity metrics (paper Sec. 4.4, Eq. 1 and Eq. 2).

``raw_reciprocity`` is the classic fraction of bilateral edges, Eq. (1):

    r = sum_{i!=j} a_ij * a_ji / M

``edge_reciprocity`` is the Garlaschelli-Loffredo correlation measure,
Eq. (2):

    rho = (r - abar) / (1 - abar),   abar = M / (N * (N - 1))

where ``abar`` equals the expected ``r`` of a random digraph with the
same vertex and edge counts.  rho > 0 means the graph is reciprocal,
rho < 0 antireciprocal (e.g. tree-like media distribution, where r = 0
and rho = -abar / (1 - abar)), rho ~= 0 means direction is uncorrelated.
"""

from __future__ import annotations

from repro.graph.digraph import DiGraph


def raw_reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists (Eq. 1)."""
    m = graph.num_edges
    if m == 0:
        return 0.0
    bilateral = sum(1 for u, v in graph.edges() if graph.has_edge(v, u))
    return bilateral / m


def edge_reciprocity(graph: DiGraph) -> float:
    """Garlaschelli-Loffredo edge reciprocity rho (Eq. 2).

    Returns 0.0 for degenerate graphs (no edges, or density 1 where the
    measure is undefined).
    """
    if graph.num_edges == 0:
        return 0.0
    abar = graph.density()
    if abar >= 1.0:
        return 0.0
    r = raw_reciprocity(graph)
    return (r - abar) / (1.0 - abar)
