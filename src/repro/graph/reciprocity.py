"""Edge reciprocity metrics (paper Sec. 4.4, Eq. 1 and Eq. 2).

``raw_reciprocity`` is the classic fraction of bilateral edges, Eq. (1):

    r = sum_{i!=j} a_ij * a_ji / M

``edge_reciprocity`` is the Garlaschelli-Loffredo correlation measure,
Eq. (2):

    rho = (r - abar) / (1 - abar),   abar = M / (N * (N - 1))

where ``abar`` equals the expected ``r`` of a random digraph with the
same vertex and edge counts.  rho > 0 means the graph is reciprocal,
rho < 0 antireciprocal (e.g. tree-like media distribution, where r = 0
and rho = -abar / (1 - abar)), rho ~= 0 means direction is uncorrelated.

The kernels run over a frozen :class:`CompactDigraph`'s integer edge-key
set (``u_index * n + v_index``), so testing for the reverse edge is one
int-set probe.  ``reciprocity_from_edges`` computes rho straight from an
edge list without building any graph — the analytics layer uses it for
intra/inter-ISP link partitions.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.graph.compact import CompactDigraph
from repro.graph.digraph import DiGraph


def raw_reciprocity(graph: DiGraph | CompactDigraph) -> float:
    """Fraction of directed edges whose reverse edge also exists (Eq. 1)."""
    compact = graph.freeze()
    m = compact.num_edges
    if m == 0:
        return 0.0
    n = len(compact.labels)
    keys = compact.edge_keys()
    bilateral = sum(1 for key in keys if (key % n) * n + key // n in keys)
    return bilateral / m


def edge_reciprocity(graph: DiGraph | CompactDigraph) -> float:
    """Garlaschelli-Loffredo edge reciprocity rho (Eq. 2).

    Returns 0.0 for degenerate graphs (no edges, or density 1 where the
    measure is undefined).
    """
    compact = graph.freeze()
    if compact.num_edges == 0:
        return 0.0
    abar = compact.density()
    if abar >= 1.0:
        return 0.0
    r = raw_reciprocity(compact)
    return (r - abar) / (1.0 - abar)


def reciprocity_from_edges(
    num_nodes: int, edges: Collection[tuple[int, int]]
) -> float:
    """rho (Eq. 2) straight from a directed edge list.

    ``edges`` must hold distinct (u, v) pairs over a vertex set of
    ``num_nodes`` — exactly what a graph induced on those vertices would
    contain, so the result is bit-identical to building the graph first.
    Returns 0.0 for degenerate inputs (no edges, fewer than two vertices,
    or density 1).
    """
    edge_set = edges if isinstance(edges, set) else set(edges)
    m = len(edge_set)
    if m == 0 or num_nodes < 2:
        return 0.0
    abar = m / (num_nodes * (num_nodes - 1))
    if abar >= 1.0:
        return 0.0
    bilateral = sum(1 for u, v in edge_set if (v, u) in edge_set)
    r = bilateral / m
    return (r - abar) / (1.0 - abar)
