"""Seeded Erdos-Renyi random graphs, the paper's comparison baselines.

The small-world test (Sec. 4.3) compares C and L of the stable-peer
graph against 'a corresponding random graph' — same vertex count and
link density — and the reciprocity measure (Sec. 4.4) is defined
relative to the same null model.  G(n, m) gives an exact edge-count
match; G(n, p) is provided for completeness.
"""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph, Graph


def gnm_random_graph(
    n: int, m: int, *, seed: int = 0, directed: bool = False
) -> Graph | DiGraph:
    """A uniform random (di)graph with ``n`` vertices and exactly ``m`` edges.

    Raises ``ValueError`` if ``m`` exceeds the number of possible edges.
    Vertices are labelled 0..n-1.
    """
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    possible = n * (n - 1) if directed else n * (n - 1) // 2
    if m > possible:
        raise ValueError(f"m={m} exceeds the {possible} possible edges")
    rng = random.Random(seed)
    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    for v in range(n):
        graph.add_node(v)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def gnp_random_graph(
    n: int, p: float, *, seed: int = 0, directed: bool = False
) -> Graph | DiGraph:
    """A G(n, p) random (di)graph: each possible edge present w.p. ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    rng = random.Random(seed)
    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    for v in range(n):
        graph.add_node(v)
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u == v:
                continue
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def matched_random_graph(graph: Graph, *, seed: int = 0) -> Graph:
    """A G(n, m) baseline with the same node and edge counts as ``graph``."""
    result = gnm_random_graph(graph.num_nodes, graph.num_edges, seed=seed)
    assert isinstance(result, Graph)
    return result
