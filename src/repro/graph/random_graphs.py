"""Seeded Erdos-Renyi random graphs, the paper's comparison baselines.

The small-world test (Sec. 4.3) compares C and L of the stable-peer
graph against 'a corresponding random graph' — same vertex count and
link density — and the reciprocity measure (Sec. 4.4) is defined
relative to the same null model.  G(n, m) gives an exact edge-count
match; G(n, p) is provided for completeness.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.graph.digraph import DiGraph, Graph

if TYPE_CHECKING:
    from repro.graph.compact import CompactGraph


def gnm_random_graph(
    n: int, m: int, *, seed: int = 0, directed: bool = False
) -> Graph | DiGraph:
    """A uniform random (di)graph with ``n`` vertices and exactly ``m`` edges.

    Raises ``ValueError`` if ``m`` exceeds the number of possible edges.
    Vertices are labelled 0..n-1.
    """
    if n < 0 or m < 0:
        raise ValueError("n and m must be non-negative")
    possible = n * (n - 1) if directed else n * (n - 1) // 2
    if m > possible:
        raise ValueError(f"m={m} exceeds the {possible} possible edges")
    rng = random.Random(seed)
    # Adjacency is built on local set rows and attached to the graph at
    # the end: same accept/reject decisions — hence the same draw
    # sequence for a given seed — without per-edge method dispatch.
    randrange = rng.randrange
    rows: list[set[int]] = [set() for _ in range(n)]
    added = 0
    if directed:
        succ = rows
        pred: list[set[int]] = [set() for _ in range(n)]
        while added < m:
            u = randrange(n)
            v = randrange(n)
            if u == v or v in succ[u]:
                continue
            succ[u].add(v)
            pred[v].add(u)
            added += 1
        digraph = DiGraph()
        digraph._succ = {i: succ[i] for i in range(n)}
        digraph._pred = {i: pred[i] for i in range(n)}
        digraph._num_edges = m
        return digraph
    while added < m:
        u = randrange(n)
        v = randrange(n)
        if u == v or v in rows[u]:
            continue
        rows[u].add(v)
        rows[v].add(u)
        added += 1
    graph = Graph()
    graph._adj = {i: rows[i] for i in range(n)}
    graph._num_edges = m
    return graph


def gnp_random_graph(
    n: int, p: float, *, seed: int = 0, directed: bool = False
) -> Graph | DiGraph:
    """A G(n, p) random (di)graph: each possible edge present w.p. ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    rng = random.Random(seed)
    graph: Graph | DiGraph = DiGraph() if directed else Graph()
    for v in range(n):
        graph.add_node(v)
    for u in range(n):
        start = 0 if directed else u + 1
        for v in range(start, n):
            if u == v:
                continue
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def matched_random_graph(graph: Graph | CompactGraph, *, seed: int = 0) -> Graph:
    """A G(n, m) baseline with the same node and edge counts as ``graph``."""
    result = gnm_random_graph(graph.num_nodes, graph.num_edges, seed=seed)
    assert isinstance(result, Graph)
    return result
