"""From-scratch graph substrate used by the Magellan analytics.

This subpackage implements every graph primitive the paper's evaluation
needs — directed/undirected graphs, traversal, clustering coefficients,
average path lengths, Garlaschelli-Loffredo edge reciprocity, degree
distributions, and seeded random-graph baselines — without depending on
third-party graph libraries at runtime.  ``networkx`` is used only in the
test suite, to cross-validate these implementations.
"""

from repro.graph.digraph import DiGraph, Graph
from repro.graph.compact import CompactDigraph, CompactGraph
from repro.graph.traversal import (
    average_shortest_path_length,
    bfs_distances,
    connected_components,
    largest_component,
)
from repro.graph.clustering import average_clustering, local_clustering
from repro.graph.reciprocity import (
    edge_reciprocity,
    raw_reciprocity,
    reciprocity_from_edges,
)
from repro.graph.degree import (
    DegreeDistribution,
    degree_distribution,
    distribution_mode,
    powerlaw_fit,
)
from repro.graph.random_graphs import gnm_random_graph, gnp_random_graph
from repro.graph.smallworld import SmallWorldMetrics, small_world_metrics
from repro.graph.components import (
    condensation_size,
    largest_scc_fraction,
    strongly_connected_components,
)
from repro.graph.assortativity import attribute_mixing, degree_assortativity
from repro.graph.kcore import core_numbers, degeneracy, k_core
from repro.graph.triads import (
    DyadCensus,
    TriangleCensus,
    dyad_census,
    triangle_census,
)

__all__ = [
    "CompactDigraph",
    "CompactGraph",
    "DiGraph",
    "Graph",
    "average_shortest_path_length",
    "bfs_distances",
    "connected_components",
    "largest_component",
    "average_clustering",
    "local_clustering",
    "edge_reciprocity",
    "raw_reciprocity",
    "reciprocity_from_edges",
    "DegreeDistribution",
    "degree_distribution",
    "distribution_mode",
    "powerlaw_fit",
    "gnm_random_graph",
    "gnp_random_graph",
    "SmallWorldMetrics",
    "small_world_metrics",
    "condensation_size",
    "largest_scc_fraction",
    "strongly_connected_components",
    "attribute_mixing",
    "degree_assortativity",
    "core_numbers",
    "degeneracy",
    "k_core",
    "DyadCensus",
    "TriangleCensus",
    "dyad_census",
    "triangle_census",
]
