"""Degree distributions and power-law diagnostics (paper Sec. 4.2).

The paper plots, on log-log axes, the fraction of stable peers having
each (in/out/total-partner) degree, and argues the distributions are
*not* power laws: they have an interior spike (mode) whose location
moves with time of day, and the indegree curve drops abruptly near 23.
``DegreeDistribution`` captures a distribution once and exposes the
statistics those arguments need.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Literal

from repro.graph.compact import CompactDigraph
from repro.graph.digraph import DiGraph, Node
from repro.stats import near_zero

DegreeKind = Literal["in", "out", "total"]


@dataclass(frozen=True)
class DegreeDistribution:
    """An empirical degree distribution over a peer population."""

    counts: tuple[tuple[int, int], ...]  # sorted (degree, num_peers)
    num_peers: int

    @classmethod
    def from_degrees(cls, degrees: Iterable[int]) -> DegreeDistribution:
        counter = Counter(degrees)
        items = tuple(sorted(counter.items()))
        return cls(counts=items, num_peers=sum(counter.values()))

    def fraction(self, degree: int) -> float:
        """P(degree = d): the paper's y-axis ('percentage of peers')."""
        if self.num_peers == 0:
            return 0.0
        for d, c in self.counts:
            if d == degree:
                return c / self.num_peers
        return 0.0

    def pmf(self) -> list[tuple[int, float]]:
        """(degree, fraction) pairs, ascending by degree."""
        if self.num_peers == 0:
            return []
        return [(d, c / self.num_peers) for d, c in self.counts]

    def ccdf(self) -> list[tuple[int, float]]:
        """(degree, P(X >= degree)) pairs, ascending by degree."""
        if self.num_peers == 0:
            return []
        out: list[tuple[int, float]] = []
        remaining = self.num_peers
        for d, c in self.counts:
            out.append((d, remaining / self.num_peers))
            remaining -= c
        return out

    def mean(self) -> float:
        """Mean degree over the population (0.0 when empty)."""
        if self.num_peers == 0:
            return 0.0
        return sum(d * c for d, c in self.counts) / self.num_peers

    def max_degree(self) -> int:
        """Largest observed degree (0 when empty)."""
        return self.counts[-1][0] if self.counts else 0

    def mode(self, *, min_degree: int = 1) -> int:
        """Most common degree at or above ``min_degree`` (the 'spike')."""
        eligible = [(c, d) for d, c in self.counts if d >= min_degree]
        if not eligible:
            return 0
        best_count, best_degree = max(eligible, key=lambda t: (t[0], -t[1]))
        del best_count
        return best_degree

    def quantile(self, q: float) -> int:
        """Smallest degree d with P(X <= d) >= q."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.num_peers == 0:
            return 0
        seen = 0
        for d, c in self.counts:
            seen += c
            if seen / self.num_peers >= q:
                return d
        return self.counts[-1][0]

    def drop_point(self, *, fraction_floor: float = 1e-3) -> int:
        """Degree past which the distribution falls below ``fraction_floor``.

        Used to locate the abrupt indegree cut-off the paper reports near
        23: the largest degree whose peer fraction still exceeds the floor.
        """
        last = 0
        for d, c in self.counts:
            if self.num_peers and c / self.num_peers >= fraction_floor:
                last = d
        return last


def degrees_of(
    graph: DiGraph | CompactDigraph,
    kind: DegreeKind,
    nodes: Sequence[Node] | None = None,
) -> list[int]:
    """Degrees of ``nodes`` (default: all vertices) in ``graph``.

    ``total`` counts distinct neighbours in either direction, matching the
    paper's 'total number of partners' when applied to the partner graph.
    """
    compact = graph.freeze()
    index_of = compact.index_of
    if nodes is not None:
        targets = [index_of[n] for n in nodes]
    else:
        targets = list(range(len(compact.labels)))
    if kind == "in":
        return [compact.in_degree_by_index(i) for i in targets]
    if kind == "out":
        return [compact.out_degree_by_index(i) for i in targets]
    if kind == "total":
        out_indptr, out_indices = compact.out_indptr, compact.out_indices
        in_indptr, in_indices = compact.in_indptr, compact.in_indices
        return [
            len(
                {*out_indices[out_indptr[i] : out_indptr[i + 1]]}
                | {*in_indices[in_indptr[i] : in_indptr[i + 1]]}
            )
            for i in targets
        ]
    raise ValueError(f"unknown degree kind: {kind!r}")


def degree_distribution(
    graph: DiGraph | CompactDigraph,
    kind: DegreeKind = "total",
    nodes: Sequence[Node] | None = None,
) -> DegreeDistribution:
    """Empirical degree distribution of ``graph`` restricted to ``nodes``."""
    return DegreeDistribution.from_degrees(degrees_of(graph, kind, nodes))


def distribution_mode(dist: DegreeDistribution, *, min_degree: int = 1) -> int:
    """Convenience wrapper for :meth:`DegreeDistribution.mode`."""
    return dist.mode(min_degree=min_degree)


@dataclass(frozen=True)
class PowerLawFit:
    """OLS fit of log10(fraction) ~ alpha * log10(degree) + c."""

    exponent: float  # slope (negative for decaying distributions)
    intercept: float
    r_squared: float
    num_points: int

    @property
    def is_plausible_powerlaw(self) -> bool:
        """Crude diagnostic: monotone-decay fit explains >=98% of variance.

        The paper's claim is qualitative ('not power-law'); this mirrors
        the visual argument — a spiked distribution fits a straight line
        on log-log axes poorly.
        """
        return self.r_squared >= 0.98 and self.exponent < 0


def powerlaw_fit(dist: DegreeDistribution, *, min_degree: int = 1) -> PowerLawFit:
    """Least-squares line through the log-log pmf (degrees >= min_degree)."""
    points = [
        (math.log10(d), math.log10(f))
        for d, f in dist.pmf()
        if d >= min_degree and f > 0.0
    ]
    n = len(points)
    if n < 2:
        return PowerLawFit(exponent=0.0, intercept=0.0, r_squared=0.0, num_points=n)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    syy = sum((y - mean_y) ** 2 for _, y in points)
    if near_zero(sxx):
        return PowerLawFit(exponent=0.0, intercept=mean_y, r_squared=0.0, num_points=n)
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    r_squared = 0.0 if near_zero(syy) else (sxy * sxy) / (sxx * syy)
    return PowerLawFit(
        exponent=slope, intercept=intercept, r_squared=r_squared, num_points=n
    )


def mle_powerlaw_alpha(
    dist: DegreeDistribution, *, min_degree: int = 1
) -> tuple[float, int]:
    """Maximum-likelihood power-law exponent (Clauset et al.'s estimator).

    Uses the standard discrete approximation
    ``alpha ~= 1 + n / sum(ln(x_i / (x_min - 0.5)))`` over degrees
    >= ``min_degree``.  Returns ``(alpha, n)``; ``(0.0, n)`` when fewer
    than two observations qualify.  Complements :func:`powerlaw_fit`
    (whose least-squares R^2 measures *linearity*, the paper's visual
    argument) with the estimator used for tail exponents.
    """
    xmin = max(1, min_degree)
    log_sum = 0.0
    n = 0
    for degree, count in dist.counts:
        if degree < xmin:
            continue
        log_sum += count * math.log(degree / (xmin - 0.5))
        n += count
    if n < 2 or log_sum <= 0.0:
        return (0.0, n)
    return (1.0 + n / log_sum, n)
