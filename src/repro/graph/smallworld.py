"""Small-world characterisation (paper Sec. 4.3, Fig. 7).

A graph is a small world if (1) its average pairwise shortest path
length L_g is close to that of a corresponding random graph L_r, and
(2) its clustering coefficient C_g is orders of magnitude larger than
C_r.  ``small_world_metrics`` computes all four quantities (with seeded
BFS sampling for large graphs) so callers can plot the two time series
of Fig. 7 and apply the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.clustering import average_clustering
from repro.graph.compact import CompactGraph
from repro.graph.digraph import Graph
from repro.graph.random_graphs import matched_random_graph
from repro.graph.traversal import average_shortest_path_length
from repro.stats import near_zero


@dataclass(frozen=True)
class SmallWorldMetrics:
    """C and L for a graph and its matched G(n, m) baseline."""

    clustering: float  # C_g
    path_length: float  # L_g
    random_clustering: float  # C_r
    random_path_length: float  # L_r
    num_nodes: int
    num_edges: int

    @property
    def clustering_ratio(self) -> float:
        """C_g / C_r (inf if the baseline has zero clustering)."""
        if near_zero(self.random_clustering):
            return float("inf") if self.clustering > 0.0 else 0.0
        return self.clustering / self.random_clustering

    @property
    def path_length_ratio(self) -> float:
        """L_g / L_r (0 when either is undefined)."""
        if near_zero(self.random_path_length):
            return 0.0
        return self.path_length / self.random_path_length

    def is_small_world(
        self, *, min_clustering_ratio: float = 10.0, max_path_ratio: float = 2.0
    ) -> bool:
        """The paper's two-part verdict with conventional thresholds."""
        return (
            self.clustering_ratio >= min_clustering_ratio
            and 0.0 < self.path_length_ratio <= max_path_ratio
        )


def small_world_metrics(
    graph: Graph | CompactGraph,
    *,
    seed: int = 0,
    path_sample_sources: int | None = 64,
    exact_below: int = 128,
) -> SmallWorldMetrics:
    """C_g, L_g and the matched random baseline's C_r, L_r.

    ``path_sample_sources`` bounds BFS work on large graphs; pass ``None``
    to force exact all-pairs computation.  Components smaller than
    ``exact_below`` vertices are always computed exactly.  For sampled
    components the L estimate is unbiased over (sampled source, any
    target) pairs with standard error sigma_L / sqrt(path_sample_sources);
    at the default 64 sources the typical stable-peer graph (sigma_L well
    under one hop) lands within ~0.1 hops at 95% confidence, and the draw
    sequence is fixed by ``seed`` so repeated runs are bit-identical.
    """
    compact = graph.freeze()
    c_g = average_clustering(compact)
    l_g = average_shortest_path_length(
        compact,
        sample_sources=path_sample_sources,
        seed=seed,
        exact_below=exact_below,
    )
    baseline = matched_random_graph(compact, seed=seed + 1).freeze()
    c_r = average_clustering(baseline)
    l_r = average_shortest_path_length(
        baseline,
        sample_sources=path_sample_sources,
        seed=seed + 2,
        exact_below=exact_below,
    )
    return SmallWorldMetrics(
        clustering=c_g,
        path_length=l_g,
        random_clustering=c_r,
        random_path_length=l_r,
        num_nodes=compact.num_nodes,
        num_edges=compact.num_edges,
    )
