"""Directed dyad and triangle statistics.

Reciprocity (Sec. 4.4) is a statement about dyads; its natural
refinement counts dyad states (mutual / asymmetric / null, the 'MAN'
census) and the cyclic-vs-transitive balance of directed triangles.  A
reciprocal exchange mesh is rich in mutual dyads and cyclic triangles;
a tree has neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class DyadCensus:
    """Counts of dyad states over all vertex pairs."""

    mutual: int  # u->v and v->u
    asymmetric: int  # exactly one direction
    null: int  # no edge

    @property
    def total(self) -> int:
        """All vertex pairs."""
        return self.mutual + self.asymmetric + self.null

    def mutual_fraction_of_connected(self) -> float:
        """Share of connected dyads that are bilateral."""
        connected = self.mutual + self.asymmetric
        return self.mutual / connected if connected else 0.0


def dyad_census(graph: DiGraph) -> DyadCensus:
    """Count mutual / asymmetric / null dyads."""
    n = graph.num_nodes
    mutual = 0
    asymmetric = 0
    for u, v in graph.edges():
        if graph.has_edge(v, u):
            mutual += 1  # counted once per direction; halved below
        else:
            asymmetric += 1
    mutual //= 2
    pairs = n * (n - 1) // 2
    return DyadCensus(
        mutual=mutual,
        asymmetric=asymmetric,
        null=pairs - mutual - asymmetric,
    )


@dataclass(frozen=True)
class TriangleCensus:
    """Directed triangle counts over vertex triples."""

    cyclic: int  # u->v->w->u (one rotation counted once)
    transitive: int  # u->v->w and u->w

    @property
    def total(self) -> int:
        """All directed triangles counted."""
        return self.cyclic + self.transitive


def triangle_census(graph: DiGraph) -> TriangleCensus:
    """Count cyclic and transitive directed triangles.

    A triple may contribute several triangles when dyads are mutual;
    each directed 3-edge configuration is counted once.
    """
    cyclic = 0
    transitive = 0
    for u in graph.nodes():
        for v in graph.successors(u):
            if v == u:
                continue
            for w in graph.successors(v):
                if w == u or w == v:
                    continue
                if graph.has_edge(w, u):
                    cyclic += 1
                if graph.has_edge(u, w):
                    transitive += 1
    # every cyclic triangle u->v->w->u is found at 3 rotations
    return TriangleCensus(cyclic=cyclic // 3, transitive=transitive)
