"""Directed dyad and triangle statistics.

Reciprocity (Sec. 4.4) is a statement about dyads; its natural
refinement counts dyad states (mutual / asymmetric / null, the 'MAN'
census) and the cyclic-vs-transitive balance of directed triangles.  A
reciprocal exchange mesh is rich in mutual dyads and cyclic triangles;
a tree has neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.compact import CompactDigraph
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class DyadCensus:
    """Counts of dyad states over all vertex pairs."""

    mutual: int  # u->v and v->u
    asymmetric: int  # exactly one direction
    null: int  # no edge

    @property
    def total(self) -> int:
        """All vertex pairs."""
        return self.mutual + self.asymmetric + self.null

    def mutual_fraction_of_connected(self) -> float:
        """Share of connected dyads that are bilateral."""
        connected = self.mutual + self.asymmetric
        return self.mutual / connected if connected else 0.0


def dyad_census(graph: DiGraph | CompactDigraph) -> DyadCensus:
    """Count mutual / asymmetric / null dyads."""
    compact = graph.freeze()
    n = compact.num_nodes
    keys = compact.edge_keys()
    mutual = 0
    asymmetric = 0
    for key in keys:
        if (key % n) * n + key // n in keys:
            mutual += 1  # counted once per direction; halved below
        else:
            asymmetric += 1
    mutual //= 2
    pairs = n * (n - 1) // 2
    return DyadCensus(
        mutual=mutual,
        asymmetric=asymmetric,
        null=pairs - mutual - asymmetric,
    )


@dataclass(frozen=True)
class TriangleCensus:
    """Directed triangle counts over vertex triples."""

    cyclic: int  # u->v->w->u (one rotation counted once)
    transitive: int  # u->v->w and u->w

    @property
    def total(self) -> int:
        """All directed triangles counted."""
        return self.cyclic + self.transitive


def triangle_census(graph: DiGraph | CompactDigraph) -> TriangleCensus:
    """Count cyclic and transitive directed triangles.

    A triple may contribute several triangles when dyads are mutual;
    each directed 3-edge configuration is counted once.
    """
    compact = graph.freeze()
    n = compact.num_nodes
    keys = compact.edge_keys()
    succ_sets = compact.succ_sets()
    cyclic = 0
    transitive = 0
    for u in range(n):
        base_u = u * n
        for v in succ_sets[u]:
            for w in succ_sets[v]:
                if w == u or w == v:
                    continue
                if w * n + u in keys:
                    cyclic += 1
                if base_u + w in keys:
                    transitive += 1
    # every cyclic triangle u->v->w->u is found at 3 rotations
    return TriangleCensus(cyclic=cyclic // 3, transitive=transitive)
