"""Breadth-first traversal, components and path-length statistics.

The paper reports average pairwise shortest path lengths of stable-peer
graphs with ~30k vertices; computing all-pairs BFS exactly is O(n*m).
``average_shortest_path_length`` therefore supports exact computation for
small graphs and seeded source-sampling for large ones — the standard
estimator in topology-measurement studies.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Iterable

from repro.graph.digraph import Graph, Node


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Hop distance from ``source`` to every reachable vertex."""
    dist: dict[Node, int] = {source: 0}
    frontier: deque[Node] = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                frontier.append(v)
    return dist


def connected_components(graph: Graph) -> list[set[Node]]:
    """All connected components, largest first."""
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp = set(bfs_distances(graph, start))
        seen |= comp
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Graph:
    """The induced subgraph on the largest connected component."""
    comps = connected_components(graph)
    if not comps:
        return Graph()
    return graph.subgraph(comps[0])


def average_shortest_path_length(
    graph: Graph,
    *,
    sample_sources: int | None = None,
    seed: int = 0,
) -> float:
    """Mean pairwise hop distance within the largest component.

    With ``sample_sources`` set, runs BFS from that many uniformly sampled
    sources (seeded) instead of from every vertex; the estimate is unbiased
    for the mean over (sampled source, any target) pairs.  Returns 0.0 for
    graphs with fewer than two connected vertices.
    """
    lcc = largest_component(graph)
    nodes = list(lcc.nodes())
    if len(nodes) < 2:
        return 0.0
    if sample_sources is not None and sample_sources < len(nodes):
        rng = random.Random(seed)
        sources: Iterable[Node] = rng.sample(nodes, sample_sources)
    else:
        sources = nodes
    total = 0
    pairs = 0
    for s in sources:
        dist = bfs_distances(lcc, s)
        total += sum(dist.values())  # includes d(s,s)=0
        pairs += len(dist) - 1
    if pairs == 0:
        return 0.0
    return total / pairs
