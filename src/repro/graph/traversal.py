"""Breadth-first traversal, components and path-length statistics.

The paper reports average pairwise shortest path lengths of stable-peer
graphs with ~30k vertices; computing all-pairs BFS exactly is O(n*m).
``average_shortest_path_length`` therefore supports exact computation for
small graphs and seeded source-sampling for large ones — the standard
estimator in topology-measurement studies.

Every function accepts either a mutable :class:`Graph` or a frozen
:class:`CompactGraph`; mutable input is frozen once up front and the
kernels run level-synchronous BFS over the CSR arrays, indexing dense
integer lists instead of hashing node labels.  Callers looping over
many traversals should freeze once and pass the compact view.
"""

from __future__ import annotations

import random

from repro.graph.compact import CompactGraph
from repro.graph.digraph import Graph, Node


def _bfs_levels(compact: CompactGraph, source_index: int) -> list[int]:
    """Hop distance per vertex index from ``source_index`` (-1 = unreached).

    Level-synchronous over the cached neighbour sets: each level is the
    union of the frontier's neighbourhoods minus everything visited, so
    the per-edge work happens inside C set operations rather than a
    Python loop.
    """
    nbrs = compact.neighbor_sets()
    dist = [-1] * len(compact.labels)
    dist[source_index] = 0
    visited = {source_index}
    frontier = {source_index}
    level = 0
    while frontier:
        level += 1
        nxt: set[int] = set()
        for u in frontier:
            nxt |= nbrs[u]
        nxt -= visited
        for v in nxt:
            dist[v] = level
        visited |= nxt
        frontier = nxt
    return dist


def bfs_distances(graph: Graph | CompactGraph, source: Node) -> dict[Node, int]:
    """Hop distance from ``source`` to every reachable vertex.

    Raises ``KeyError`` when ``source`` is not a vertex of the graph.
    """
    compact = graph.freeze()
    source_index = compact.index_of.get(source)
    if source_index is None:
        raise KeyError(f"no node {source!r}")
    dist = _bfs_levels(compact, source_index)
    labels = compact.labels
    return {labels[i]: d for i, d in enumerate(dist) if d >= 0}


def _component_index_lists(compact: CompactGraph) -> list[list[int]]:
    """Connected components as vertex-index lists, largest first."""
    n = len(compact.labels)
    adj = compact.adjacency_lists()
    seen = bytearray(n)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        comp = [start]
        frontier = [start]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in adj[u]:
                    if not seen[v]:
                        seen[v] = 1
                        comp.append(v)
                        nxt.append(v)
            frontier = nxt
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def connected_components(graph: Graph | CompactGraph) -> list[set[Node]]:
    """All connected components, largest first."""
    compact = graph.freeze()
    labels = compact.labels
    return [
        {labels[i] for i in comp} for comp in _component_index_lists(compact)
    ]


def largest_component(graph: Graph | CompactGraph) -> Graph:
    """The induced subgraph on the largest connected component."""
    comps = connected_components(graph)
    if not comps:
        return Graph()
    mutable = graph if isinstance(graph, Graph) else graph.thaw()
    return mutable.subgraph(comps[0])


def average_shortest_path_length(
    graph: Graph | CompactGraph,
    *,
    sample_sources: int | None = None,
    seed: int = 0,
    exact_below: int = 0,
) -> float:
    """Mean pairwise hop distance within the largest component.

    With ``sample_sources`` set, runs BFS from that many uniformly sampled
    sources (seeded) instead of from every vertex; the estimate is unbiased
    for the mean over (sampled source, any target) pairs, with standard
    error sigma_L / sqrt(sample_sources) where sigma_L is the per-source
    spread of mean distances.  ``exact_below`` disables sampling when the
    largest component has fewer vertices than the threshold, so small
    graphs are always exact.  Returns 0.0 for graphs with fewer than two
    connected vertices.
    """
    compact = graph.freeze()
    comps = _component_index_lists(compact)
    if not comps or len(comps[0]) < 2:
        return 0.0
    component = comps[0]
    if (
        sample_sources is not None
        and len(component) >= exact_below
        and sample_sources < len(component)
    ):
        rng = random.Random(seed)
        sources = rng.sample(component, sample_sources)
    else:
        sources = component
    nbrs = compact.neighbor_sets()
    total = 0
    pairs = 0
    for s in sources:
        # Distance values are never materialised per vertex: each BFS
        # level contributes level * |level frontier| to the total.
        visited = {s}
        frontier = {s}
        level = 0
        while frontier:
            level += 1
            nxt: set[int] = set()
            for u in frontier:
                nxt |= nbrs[u]
            nxt -= visited
            total += level * len(nxt)
            pairs += len(nxt)
            visited |= nxt
            frontier = nxt
    if pairs == 0:
        return 0.0
    return total / pairs
