"""Directed and undirected graph containers.

Both classes store adjacency as dictionaries of sets, which keeps edge
insertion, deletion and membership checks O(1) and iteration over a
vertex's neighbourhood O(degree).  Vertices may be any hashable value
(the analytics layer uses integer peer identifiers and IPv4 integers).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.graph.compact import CompactDigraph, CompactGraph

Node = Hashable


class Graph:
    """A simple undirected graph (no self-loops, no parallel edges)."""

    def __init__(self, edges: Iterable[tuple[Node, Node]] | None = None) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``; self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop rejected: {u!r}")
        adj = self._adj
        nbrs_u = adj.get(u)
        if nbrs_u is None:
            nbrs_u = adj[u] = set()
        nbrs_v = adj.get(v)
        if nbrs_v is None:
            nbrs_v = adj[v] = set()
        if v not in nbrs_u:
            nbrs_u.add(v)
            nbrs_v.add(u)
            self._num_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``; raises ``KeyError`` if absent."""
        if u not in self._adj or v not in self._adj[u]:
            raise KeyError(f"no edge {u!r}-{v!r}")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._adj:
            raise KeyError(f"no node {node!r}")
        neighbours = self._adj.pop(node)
        for other in neighbours:
            self._adj[other].discard(node)
        self._num_edges -= len(neighbours)

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the undirected edge {u, v} exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> set[Node]:
        """The neighbour set of ``node`` (a live reference; do not mutate)."""
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Number of neighbours of ``node``."""
        return len(self._adj[node])

    def nodes(self) -> Iterator[Node]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Each undirected edge exactly once."""
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    @property
    def num_nodes(self) -> int:
        """Vertex count."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Edge count."""
        return self._num_edges

    def subgraph(self, nodes: Iterable[Node]) -> Graph:
        """The subgraph induced on ``nodes`` (unknown nodes are ignored)."""
        keep = {n for n in nodes if n in self._adj}
        sub = Graph()
        adj = sub._adj
        half_edges = 0
        for n in keep:
            row = self._adj[n] & keep
            adj[n] = row
            half_edges += len(row)
        sub._num_edges = half_edges // 2
        return sub

    def density(self) -> float:
        """Fraction of possible edges present (0 for graphs with <2 nodes)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return 2.0 * self._num_edges / (n * (n - 1))

    def freeze(self) -> CompactGraph:
        """A frozen CSR snapshot of this graph for the metric kernels.

        The compact view shares no state with this graph; later
        mutations here do not affect it.
        """
        from repro.graph.compact import CompactGraph

        return CompactGraph.from_graph(self)


class DiGraph:
    """A simple directed graph (no self-loops, no parallel edges)."""

    def __init__(self, edges: Iterable[tuple[Node, Node]] | None = None) -> None:
        self._succ: dict[Node, set[Node]] = {}
        self._pred: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``u -> v``; self-loops are rejected."""
        if u == v:
            raise ValueError(f"self-loop rejected: {u!r}")
        succ = self._succ
        pred = self._pred
        succ_u = succ.get(u)
        if succ_u is None:
            succ_u = succ[u] = set()
            pred[u] = set()
        pred_v = pred.get(v)
        if pred_v is None:
            succ[v] = set()
            pred_v = pred[v] = set()
        if v not in succ_u:
            succ_u.add(v)
            pred_v.add(u)
            self._num_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``u -> v``; raises ``KeyError`` if absent."""
        if u not in self._succ or v not in self._succ[u]:
            raise KeyError(f"no edge {u!r}->{v!r}")
        self._succ[u].discard(v)
        self._pred[v].discard(u)
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise KeyError(f"no node {node!r}")
        out = self._succ.pop(node)
        inc = self._pred.pop(node)
        for v in out:
            self._pred[v].discard(node)
        for u in inc:
            self._succ[u].discard(node)
        self._num_edges -= len(out) + len(inc)

    # -- queries ----------------------------------------------------------

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when the directed edge ``u -> v`` exists."""
        return u in self._succ and v in self._succ[u]

    def successors(self, node: Node) -> set[Node]:
        """Out-neighbours of ``node`` (live reference; do not mutate)."""
        return self._succ[node]

    def predecessors(self, node: Node) -> set[Node]:
        """In-neighbours of ``node`` (live reference; do not mutate)."""
        return self._pred[node]

    def out_degree(self, node: Node) -> int:
        """Number of out-neighbours."""
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Number of in-neighbours."""
        return len(self._pred[node])

    def nodes(self) -> Iterator[Node]:
        """Iterate over all vertices."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate over all directed edges as (u, v) pairs."""
        for u, nbrs in self._succ.items():
            for v in nbrs:
                yield (u, v)

    @property
    def num_nodes(self) -> int:
        """Vertex count."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Directed edge count."""
        return self._num_edges

    def density(self) -> float:
        """Ratio of existing to possible directed edges (paper's a-bar)."""
        n = self.num_nodes
        if n < 2:
            return 0.0
        return self._num_edges / (n * (n - 1))

    def subgraph(self, nodes: Iterable[Node]) -> DiGraph:
        """The subgraph induced on ``nodes`` (unknown nodes are ignored)."""
        keep = {n for n in nodes if n in self._succ}
        sub = DiGraph()
        succ = sub._succ
        pred = sub._pred
        edges = 0
        for n in keep:
            row = self._succ[n] & keep
            succ[n] = row
            pred[n] = self._pred[n] & keep
            edges += len(row)
        sub._num_edges = edges
        return sub

    def to_undirected(self) -> Graph:
        """Collapse edge direction; ``u->v`` and/or ``v->u`` become ``{u,v}``."""
        g = Graph()
        adj = g._adj
        half_edges = 0
        for n, out in self._succ.items():
            row = out | self._pred[n]
            adj[n] = row
            half_edges += len(row)
        g._num_edges = half_edges // 2
        return g

    def reverse(self) -> DiGraph:
        """A new graph with every edge direction flipped."""
        rev = DiGraph()
        for n in self._succ:
            rev.add_node(n)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def freeze(self) -> CompactDigraph:
        """A frozen CSR snapshot of this digraph for the metric kernels.

        The compact view shares no state with this graph; later
        mutations here do not affect it.
        """
        from repro.graph.compact import CompactDigraph

        return CompactDigraph.from_digraph(self)
