"""Watts-Strogatz clustering coefficients (paper Sec. 4.3).

The paper computes ``C_g = (1/n) * sum_i C_i`` where ``C_i`` is the
fraction of possible edges present among vertex i's neighbours, and
compares it against a random graph with the same vertex count and link
density.  These functions operate on the undirected stable-peer graph.
"""

from __future__ import annotations

from repro.graph.digraph import Graph, Node


def local_clustering(graph: Graph, node: Node) -> float:
    """C_i: realised fraction of edges among ``node``'s neighbours.

    Vertices with degree < 2 have an empty neighbourhood pair set; the
    conventional value 0.0 is returned (matching networkx).
    """
    nbrs = graph.neighbors(node)
    k = len(nbrs)
    if k < 2:
        return 0.0
    links = 0
    nbr_list = list(nbrs)
    for i, u in enumerate(nbr_list):
        u_nbrs = graph.neighbors(u)
        for v in nbr_list[i + 1 :]:
            if v in u_nbrs:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph, *, count_isolated: bool = True) -> float:
    """C_g: mean of local clustering coefficients over all vertices.

    ``count_isolated=True`` (the paper's definition, averaging over *all*
    n vertices) includes degree<2 vertices as zeros; with ``False`` they
    are excluded from the mean.
    """
    coeffs: list[float] = []
    for node in graph.nodes():
        if graph.degree(node) < 2 and not count_isolated:
            continue
        coeffs.append(local_clustering(graph, node))
    if not coeffs:
        return 0.0
    return sum(coeffs) / len(coeffs)


def expected_random_clustering(graph: Graph) -> float:
    """C of a G(n,m) random graph with this graph's size: its density.

    In an Erdos-Renyi graph the probability that two neighbours are linked
    equals the overall edge probability, so C_random ~= 2m / (n(n-1)).
    """
    return graph.density()
