"""Watts-Strogatz clustering coefficients (paper Sec. 4.3).

The paper computes ``C_g = (1/n) * sum_i C_i`` where ``C_i`` is the
fraction of possible edges present among vertex i's neighbours, and
compares it against a random graph with the same vertex count and link
density.  These functions operate on the undirected stable-peer graph.

Both entry points accept a mutable :class:`Graph` or a frozen
:class:`CompactGraph`.  The kernel counts, for each vertex, the summed
overlap ``sum_{u in N(i)} |N(u) & N(i)|`` over cached frozensets of
neighbour *indices* — each realised neighbour pair is seen from both
ends, so the overlap equals twice the link count and
``C_i = overlap / (k * (k - 1))`` reproduces the pairwise definition
bit-for-bit.
"""

from __future__ import annotations

from repro.graph.compact import CompactGraph
from repro.graph.digraph import Graph, Node


def local_clustering(graph: Graph | CompactGraph, node: Node) -> float:
    """C_i: realised fraction of edges among ``node``'s neighbours.

    Vertices with degree < 2 have an empty neighbourhood pair set; the
    conventional value 0.0 is returned (matching networkx).
    """
    compact = graph.freeze()
    neighbor_sets = compact.neighbor_sets()
    nbrs = neighbor_sets[compact.index_of[node]]
    k = len(nbrs)
    if k < 2:
        return 0.0
    overlap = sum(len(neighbor_sets[u] & nbrs) for u in nbrs)
    return overlap / (k * (k - 1))


def average_clustering(
    graph: Graph | CompactGraph, *, count_isolated: bool = True
) -> float:
    """C_g: mean of local clustering coefficients over all vertices.

    ``count_isolated=True`` (the paper's definition, averaging over *all*
    n vertices) includes degree<2 vertices as zeros; with ``False`` they
    are excluded from the mean.
    """
    compact = graph.freeze()
    neighbor_sets = compact.neighbor_sets()
    total = 0.0
    counted = 0
    for nbrs in neighbor_sets:
        k = len(nbrs)
        if k < 2:
            if count_isolated:
                counted += 1
            continue
        overlap = 0
        for u in nbrs:
            overlap += len(neighbor_sets[u] & nbrs)
        total += overlap / (k * (k - 1))
        counted += 1
    if counted == 0:
        return 0.0
    return total / counted


def expected_random_clustering(graph: Graph | CompactGraph) -> float:
    """C of a G(n,m) random graph with this graph's size: its density.

    In an Erdos-Renyi graph the probability that two neighbours are linked
    equals the overall edge probability, so C_random ~= 2m / (n(n-1)).
    """
    return graph.density()
