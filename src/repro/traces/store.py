"""Trace storage: JSONL (optionally gzip) on disk or in memory.

Reports are appended in non-decreasing time order (the simulator emits
them chronologically), which lets analysis stream a multi-hundred-MB
trace window by window without loading it whole — the same discipline
a real 120 GB trace demands.

Reading back comes in two flavours.  **Strict** (the default) raises
:class:`TraceFormatError` on the first malformed line — right for
traces this codebase wrote itself, where corruption means a bug.
**Tolerant** mode models the paper's reality (a UDP collection path and
a collector that can die mid-write): it skips and counts bad lines,
deduplicates re-deliveries, quarantines garbage records and locally
re-sorts bounded reordering, accumulating everything it did into a
:class:`~repro.traces.health.TraceHealth`.
"""

from __future__ import annotations

import gzip
import heapq
import io
import os
import zlib
from collections import OrderedDict
from pathlib import Path
from collections.abc import Iterable, Iterator
from typing import Protocol, cast

from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.health import TraceHealth
from repro.traces.records import PeerReport


class TraceStore(Protocol):
    """Anything that can accept appended reports."""

    def append(self, report: PeerReport) -> None: ...


class TraceFormatError(ValueError):
    """A trace line could not be parsed in strict mode."""


class TraceTruncatedError(TraceFormatError):
    """The final trace line is an incomplete write (killed collector)."""


class TraceStoreClosedError(RuntimeError):
    """An append was attempted on a store that has been closed.

    Replaces the opaque ``ValueError: I/O operation on closed file`` a
    raw file handle would raise, naming the store and the fix.
    """


#: Exceptions a torn or damaged gzip stream raises while being read;
#: ``EOFError`` is the torn-tail signature (killed collector), the other
#: two appear when compressed bytes themselves are damaged.
_GZIP_DAMAGE = (EOFError, gzip.BadGzipFile, zlib.error)


class InMemoryTraceStore:
    """Keeps reports in a list; for tests and small experiments."""

    def __init__(self) -> None:
        self.reports: list[PeerReport] = []

    def append(self, report: PeerReport) -> None:
        """Store one report."""
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[PeerReport]:
        return iter(self.reports)


#: open() mode letter per store mode; "create" refuses to clobber an
#: existing trace, which has destroyed more than one real dataset.
_STORE_MODES = {"create": "x", "overwrite": "w", "append": "a"}


class JsonlTraceStore:
    """Appends reports as JSON lines, optionally gzip-compressed.

    ``mode`` is ``"create"`` (exclusive — raises ``FileExistsError`` on
    an existing path), ``"overwrite"`` or ``"append"``.  The stream is
    flushed every ``flush_every`` records so a crashed run leaves a
    readable prefix (plus at most one truncated line, which tolerant
    readers skip); ``fsync_on_flush=True`` additionally fsyncs at each
    flush, which the campaign durability layer uses to bound how much a
    power cut can lose.  Use as a context manager, or call :meth:`close`
    explicitly before reading the file back.  Appending after close
    raises :class:`TraceStoreClosedError`.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        compress: bool | None = None,
        mode: str = "create",
        flush_every: int = 256,
        fsync_on_flush: bool = False,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if mode not in _STORE_MODES:
            raise ValueError(
                f"mode must be one of {sorted(_STORE_MODES)}, got {mode!r}"
            )
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        if compress is None:
            compress = self.path.suffix == ".gz"
        self.compress = compress
        self.mode = mode
        self.flush_every = flush_every
        self.fsync_on_flush = fsync_on_flush
        self._obs = obs
        self._count = 0
        open_mode = _STORE_MODES[mode] + "t"
        if compress:
            self._fh = cast(
                io.TextIOBase, gzip.open(self.path, open_mode, compresslevel=4)
            )
        else:
            self._fh = cast(io.TextIOBase, open(self.path, open_mode))

    def append(self, report: PeerReport) -> None:
        """Write one report as a JSON line."""
        self.append_line(report.to_json())

    def append_line(self, line: str) -> None:
        """Write one raw line (fault injection writes damaged lines here)."""
        if self._fh.closed:
            raise TraceStoreClosedError(
                f"cannot append to closed trace store {self.path}; "
                "append before close(), or reopen with mode='append'"
            )
        self._fh.write(line)
        if not line.endswith("\n"):
            self._fh.write("\n")
        self._count += 1
        if self._obs.enabled:
            # Pre-compression character count; reports are ASCII JSON, so
            # this equals the uncompressed on-disk byte count.
            self._obs.count(
                "trace.bytes_written",
                len(line) + (not line.endswith("\n")),
            )
        if self._count % self.flush_every == 0:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS (and to disk when fsyncing).

        A no-op after :meth:`close` — teardown paths routinely flush a
        store that something else (a ``with`` block, a campaign's
        cleanup) already closed, and close flushed everything anyway.
        """
        if self._fh.closed:
            return
        self._fh.flush()
        if self.fsync_on_flush:
            os.fsync(self._fh.fileno())

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> JsonlTraceStore:
        """Enter a ``with`` block; the store closes on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the store when the ``with`` block ends."""
        self.close()


#: Deduplication memory of the tolerant reader: enough to catch the
#: adjacent re-deliveries a UDP path produces without unbounded state.
_DEDUP_CAPACITY = 8_192


class TraceReader:
    """Streams reports back from a JSONL(.gz) trace file.

    In strict mode (default) a malformed line raises
    :class:`TraceFormatError` naming the line number — or
    :class:`TraceTruncatedError` when the damage is an incomplete final
    line, the signature of a collector killed mid-write.  With
    ``tolerant=True`` bad lines are skipped, exact duplicates dropped
    and garbage-valued records quarantined; :attr:`health` describes the
    most recent (complete) iteration.
    """

    def __init__(self, path: str | Path, *, tolerant: bool = False) -> None:
        self.path = Path(path)
        self.tolerant = tolerant
        self.health = TraceHealth()

    def _open(self) -> io.TextIOBase:
        if self.path.suffix == ".gz":
            return cast(io.TextIOBase, gzip.open(self.path, "rt"))
        return cast(io.TextIOBase, open(self.path))

    def _lines(self, fh: io.TextIOBase) -> Iterator[tuple[int, str]]:
        """Yield ``(lineno, raw_line)``, absorbing a torn gzip tail.

        A gzip stream cut off mid-write raises ``EOFError`` (not a bad
        JSON line) the moment iteration crosses the damage; damaged
        compressed bytes raise ``BadGzipFile``/``zlib.error``.  Tolerant
        mode counts the damage as a truncation and ends the stream —
        everything before the tear was already yielded; strict mode
        raises :class:`TraceTruncatedError`.
        """
        lineno = 0
        while True:
            try:
                raw = next(fh)
            except StopIteration:
                return
            except _GZIP_DAMAGE as exc:
                if self.tolerant:
                    self.health.truncated_lines += 1
                    return
                raise TraceTruncatedError(
                    f"{self.path}: compressed stream damaged after line "
                    f"{lineno} (collector killed mid-write?); re-read with "
                    "tolerant=True to keep the intact prefix"
                ) from exc
            lineno += 1
            yield lineno, raw

    def __iter__(self) -> Iterator[PeerReport]:
        health = self.health
        health.reset()
        seen: OrderedDict[tuple[float, int], None] = OrderedDict()
        with self._open() as fh:
            for lineno, raw in self._lines(fh):
                line = raw.strip()
                if not line:
                    continue
                health.lines_read += 1
                try:
                    report = PeerReport.from_json(line)
                except (ValueError, KeyError, TypeError) as exc:
                    truncated = not raw.endswith("\n")
                    if self.tolerant:
                        if truncated:
                            health.truncated_lines += 1
                        else:
                            health.parse_failures += 1
                        continue
                    if truncated:
                        raise TraceTruncatedError(
                            f"{self.path}: truncated final line {lineno} "
                            "(collector killed mid-write?); re-read with "
                            "tolerant=True to skip it"
                        ) from exc
                    raise TraceFormatError(
                        f"{self.path}: malformed record on line {lineno}: {exc}"
                    ) from exc
                if self.tolerant:
                    if not report.is_wellformed():
                        health.quarantined += 1
                        continue
                    key = (report.time, report.peer_ip)
                    if key in seen:
                        health.duplicates += 1
                        continue
                    seen[key] = None
                    if len(seen) > _DEDUP_CAPACITY:
                        seen.popitem(last=False)
                health.records_ok += 1
                yield report


def sanitize(
    reports: Iterable[PeerReport],
    *,
    slack_s: float = 600.0,
    health: TraceHealth | None = None,
) -> Iterator[PeerReport]:
    """Re-sort a locally-disordered stream into time order.

    Records are held back until the stream has advanced ``slack_s``
    beyond them, which absorbs any reordering of bounded depth (a UDP
    path reorders by packets, not hours).  A record arriving *behind*
    already-released output cannot be placed and is quarantined.
    Reorder statistics accumulate into ``health``.
    """
    if slack_s <= 0:
        raise ValueError("slack must be positive")
    health = health if health is not None else TraceHealth()
    pending: list[tuple[float, int, PeerReport]] = []
    seq = 0
    last_seen: float | None = None
    released: float | None = None
    for report in reports:
        if last_seen is not None and report.time < last_seen:
            health.reordered += 1
            health.max_reorder_depth_s = max(
                health.max_reorder_depth_s, last_seen - report.time
            )
        else:
            last_seen = report.time
        if released is not None and report.time < released:
            health.quarantined += 1
            continue
        seq += 1
        heapq.heappush(pending, (report.time, seq, report))
        while pending and pending[0][0] <= last_seen - slack_s:
            t, _, ready = heapq.heappop(pending)
            released = t
            yield ready
    while pending:
        t, _, ready = heapq.heappop(pending)
        yield ready


class TolerantTraceReader:
    """Re-iterable dirty-trace pipeline: parse-skip, dedup, local re-sort.

    Drop-in for :class:`TraceReader` wherever analytics expects a
    re-iterable, time-ordered trace; after a full iteration
    :attr:`health` combines the parse-level and ordering-level counters
    of that pass.
    """

    def __init__(self, path: str | Path, *, slack_s: float = 600.0) -> None:
        self.path = Path(path)
        self.slack_s = slack_s
        self._reader = TraceReader(path, tolerant=True)
        self.health = TraceHealth()

    def __iter__(self) -> Iterator[PeerReport]:
        self.health.reset()
        yield from sanitize(
            iter(self._reader), slack_s=self.slack_s, health=self.health
        )
        # The inner reader resets its own counters per pass; fold the
        # completed pass's parse-level counts into the combined view.
        self.health.merge(self._reader.health)


def iter_windows(
    reports: Iterable[PeerReport],
    window_seconds: float,
    *,
    start: float = 0.0,
    tolerant: bool = False,
    health: TraceHealth | None = None,
) -> Iterator[tuple[float, list[PeerReport]]]:
    """Group time-ordered reports into consecutive windows.

    Yields ``(window_start, reports_in_window)`` for every non-empty
    window.  In strict mode (default), raises ``ValueError`` if input
    order regresses across a window boundary (a corrupted or unsorted
    trace).  With ``tolerant=True`` the stream is first passed through
    :func:`sanitize` (slack of one window), so bounded reordering is
    repaired and hopelessly late records are quarantined into
    ``health`` instead of raising.
    """
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    if tolerant:
        reports = sanitize(reports, slack_s=window_seconds, health=health)
    current_start: float | None = None
    bucket: list[PeerReport] = []
    for report in reports:
        if report.time < start:
            continue
        w = start + ((report.time - start) // window_seconds) * window_seconds
        if current_start is None:
            current_start = w
        if w < current_start:
            raise ValueError("trace not time-ordered across windows")
        if w > current_start:
            if bucket:
                yield (current_start, bucket)
            bucket = []
            current_start = w
        bucket.append(report)
    if bucket and current_start is not None:
        yield (current_start, bucket)
