"""Trace storage: JSONL (optionally gzip) on disk or in memory.

Reports are appended in non-decreasing time order (the simulator emits
them chronologically), which lets analysis stream a multi-hundred-MB
trace window by window without loading it whole — the same discipline
a real 120 GB trace demands.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Protocol

from repro.traces.records import PeerReport


class TraceStore(Protocol):
    """Anything that can accept appended reports."""

    def append(self, report: PeerReport) -> None: ...


class InMemoryTraceStore:
    """Keeps reports in a list; for tests and small experiments."""

    def __init__(self) -> None:
        self.reports: list[PeerReport] = []

    def append(self, report: PeerReport) -> None:
        """Store one report."""
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[PeerReport]:
        return iter(self.reports)


class JsonlTraceStore:
    """Appends reports as JSON lines, optionally gzip-compressed.

    Use as a context manager, or call :meth:`close` explicitly before
    reading the file back.
    """

    def __init__(self, path: str | Path, *, compress: bool | None = None) -> None:
        self.path = Path(path)
        if compress is None:
            compress = self.path.suffix == ".gz"
        self.compress = compress
        self._count = 0
        if compress:
            self._fh: io.TextIOBase = gzip.open(self.path, "wt", compresslevel=4)
        else:
            self._fh = open(self.path, "w")

    def append(self, report: PeerReport) -> None:
        """Write one report as a JSON line."""
        self._fh.write(report.to_json())
        self._fh.write("\n")
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlTraceStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceReader:
    """Streams reports back from a JSONL(.gz) trace file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[PeerReport]:
        if self.path.suffix == ".gz":
            fh: io.TextIOBase = gzip.open(self.path, "rt")
        else:
            fh = open(self.path, "r")
        with fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield PeerReport.from_json(line)


def iter_windows(
    reports: Iterable[PeerReport], window_seconds: float, *, start: float = 0.0
) -> Iterator[tuple[float, list[PeerReport]]]:
    """Group time-ordered reports into consecutive windows.

    Yields ``(window_start, reports_in_window)`` for every non-empty
    window.  Raises ``ValueError`` if input order regresses across a
    window boundary (a corrupted or unsorted trace).
    """
    if window_seconds <= 0:
        raise ValueError("window must be positive")
    current_start: float | None = None
    bucket: list[PeerReport] = []
    for report in reports:
        if report.time < start:
            continue
        w = start + ((report.time - start) // window_seconds) * window_seconds
        if current_start is None:
            current_start = w
        if w < current_start:
            raise ValueError("trace not time-ordered across windows")
        if w > current_start:
            if bucket:
                yield (current_start, bucket)
            bucket = []
            current_start = w
        bucket.append(report)
    if bucket and current_start is not None:
        yield (current_start, bucket)
