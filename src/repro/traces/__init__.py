"""The measurement methodology of the paper (Sec. 3.2), reproduced.

Each peer sends its first report 20 minutes after joining and one every
10 minutes thereafter (so reporting peers are the 'stable backbone').
A report carries the peer's IP, channel, buffer map summary, total
download/upload capacities, instantaneous aggregate receiving/sending
throughput, and a list of all partners with per-partner sent/received
segment counts.  Reports travel over UDP (lossy) to a standalone trace
server, which appends them to a trace store.

Because the real collection path was a lossy Internet UDP path, this
package also carries a fault-injection layer (``FaultyChannel``) and a
dirty-trace-tolerant read path (``TraceReader(tolerant=True)``,
``TolerantTraceReader``, ``iter_windows(tolerant=True)``) whose
accounting lands in a ``TraceHealth``.
"""

from repro.traces.records import PartnerRecord, PeerReport
from repro.traces.anonymize import IspPreservingAnonymizer
from repro.traces.health import TraceHealth
from repro.traces.reporter import build_report, port_for_peer
from repro.traces.server import TraceServer
from repro.traces.faults import ChannelCounters, ChannelFaults, FaultyChannel
from repro.traces.segments import (
    SegmentedTraceReader,
    SegmentedTraceStore,
    SegmentInfo,
    SegmentRecoveryError,
)
from repro.traces.store import (
    InMemoryTraceStore,
    JsonlTraceStore,
    TolerantTraceReader,
    TraceFormatError,
    TraceReader,
    TraceStoreClosedError,
    TraceTruncatedError,
    iter_windows,
    sanitize,
)

__all__ = [
    "PartnerRecord",
    "PeerReport",
    "IspPreservingAnonymizer",
    "TraceHealth",
    "build_report",
    "port_for_peer",
    "TraceServer",
    "ChannelCounters",
    "ChannelFaults",
    "FaultyChannel",
    "InMemoryTraceStore",
    "JsonlTraceStore",
    "SegmentInfo",
    "SegmentRecoveryError",
    "SegmentedTraceReader",
    "SegmentedTraceStore",
    "TolerantTraceReader",
    "TraceFormatError",
    "TraceReader",
    "TraceStoreClosedError",
    "TraceTruncatedError",
    "iter_windows",
    "sanitize",
]
