"""The measurement methodology of the paper (Sec. 3.2), reproduced.

Each peer sends its first report 20 minutes after joining and one every
10 minutes thereafter (so reporting peers are the 'stable backbone').
A report carries the peer's IP, channel, buffer map summary, total
download/upload capacities, instantaneous aggregate receiving/sending
throughput, and a list of all partners with per-partner sent/received
segment counts.  Reports travel over UDP (lossy) to a standalone trace
server, which appends them to a trace store.
"""

from repro.traces.records import PartnerRecord, PeerReport
from repro.traces.anonymize import IspPreservingAnonymizer
from repro.traces.reporter import build_report, port_for_peer
from repro.traces.server import TraceServer
from repro.traces.store import (
    InMemoryTraceStore,
    JsonlTraceStore,
    TraceReader,
    iter_windows,
)

__all__ = [
    "PartnerRecord",
    "PeerReport",
    "IspPreservingAnonymizer",
    "build_report",
    "port_for_peer",
    "TraceServer",
    "InMemoryTraceStore",
    "JsonlTraceStore",
    "TraceReader",
    "iter_windows",
]
