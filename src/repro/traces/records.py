"""Trace record schema and compact (de)serialisation.

Records follow the paper's report contents (Sec. 3.2).  On disk they
are single JSON lines with short keys and positional partner arrays —
the traces of a two-week simulated run reach hundreds of megabytes, so
compactness matters.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PartnerRecord:
    """One partner entry in a report: identity plus segment counters."""

    ip: int
    port: int
    sent_segments: int  # segments this peer sent to the partner
    recv_segments: int  # segments this peer received from the partner

    def to_array(self) -> list[int]:
        """Positional [ip, port, sent, recv] form for compact JSON."""
        return [self.ip, self.port, self.sent_segments, self.recv_segments]

    @classmethod
    def from_array(cls, arr: list[int]) -> PartnerRecord:
        if len(arr) != 4:
            raise ValueError(f"partner record needs 4 fields, got {len(arr)}")
        return cls(ip=arr[0], port=arr[1], sent_segments=arr[2], recv_segments=arr[3])


@dataclass(frozen=True)
class PeerReport:
    """One periodic measurement report from a peer."""

    time: float  # seconds since the simulated epoch
    peer_ip: int
    channel_id: int
    buffer_fill: float  # sliding-window occupancy summary, 0..1
    playback_position: int  # segment index of the playback point
    download_capacity_kbps: float
    upload_capacity_kbps: float
    recv_rate_kbps: float  # instantaneous aggregate receiving throughput
    sent_rate_kbps: float  # instantaneous aggregate sending throughput
    partners: tuple[PartnerRecord, ...]

    def to_json(self) -> str:
        """Serialise to one compact JSON line."""
        obj = {
            # full precision: rounding could push a time across the
            # boundary of the observation window it was emitted in
            "t": self.time,
            "ip": self.peer_ip,
            "ch": self.channel_id,
            "bf": round(self.buffer_fill, 4),
            "pp": self.playback_position,
            "dc": round(self.download_capacity_kbps, 1),
            "uc": round(self.upload_capacity_kbps, 1),
            "rr": round(self.recv_rate_kbps, 1),
            "sr": round(self.sent_rate_kbps, 1),
            "p": [p.to_array() for p in self.partners],
        }
        return json.dumps(obj, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> PeerReport:
        obj = json.loads(line)
        return cls(
            time=float(obj["t"]),
            peer_ip=int(obj["ip"]),
            channel_id=int(obj["ch"]),
            buffer_fill=float(obj["bf"]),
            playback_position=int(obj["pp"]),
            download_capacity_kbps=float(obj["dc"]),
            upload_capacity_kbps=float(obj["uc"]),
            recv_rate_kbps=float(obj["rr"]),
            sent_rate_kbps=float(obj["sr"]),
            partners=tuple(PartnerRecord.from_array(a) for a in obj["p"]),
        )

    def is_wellformed(self) -> bool:
        """Field-level sanity: finite, non-negative, in-range values.

        A syntactically valid JSON line can still carry garbage (bit
        flips on the UDP path, a half-written float); tolerant readers
        quarantine such records instead of feeding them to analytics.
        """
        numbers = (
            self.time,
            self.download_capacity_kbps,
            self.upload_capacity_kbps,
            self.recv_rate_kbps,
            self.sent_rate_kbps,
        )
        if any(not math.isfinite(v) or v < 0.0 for v in numbers):
            return False
        if not math.isfinite(self.buffer_fill) or not -0.01 <= self.buffer_fill <= 1.01:
            return False
        if self.playback_position < 0 or self.peer_ip < 0:
            return False
        return all(
            p.sent_segments >= 0 and p.recv_segments >= 0 and p.ip >= 0
            for p in self.partners
        )

    def active_suppliers(self, threshold: int = 10) -> list[PartnerRecord]:
        """Partners from which >= ``threshold`` segments were received."""
        return [p for p in self.partners if p.recv_segments >= threshold]

    def active_receivers(self, threshold: int = 10) -> list[PartnerRecord]:
        """Partners to which >= ``threshold`` segments were sent."""
        return [p for p in self.partners if p.sent_segments >= threshold]
