"""Trace-quality accounting for dirty (real-world) traces.

A 120 GB UDP-collected trace is never clean: reports get lost,
duplicated and reordered in flight, and lines get truncated or
corrupted when the collector is killed mid-write.  ``TraceHealth``
accumulates what the tolerant readers (``TraceReader(tolerant=True)``,
``sanitize``, ``iter_windows(tolerant=True)``) skipped, deduplicated or
re-sorted, so analytics over a dirty trace can report exactly how dirty
it was instead of silently pretending it was clean.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TraceHealth:
    """Counters describing what a tolerant trace pass encountered."""

    lines_read: int = 0  # non-empty lines seen
    records_ok: int = 0  # lines parsed into well-formed reports
    parse_failures: int = 0  # corrupt/malformed lines skipped
    truncated_lines: int = 0  # incomplete final line (interrupted write)
    duplicates: int = 0  # exact re-deliveries dropped
    reordered: int = 0  # records that arrived behind a later timestamp
    max_reorder_depth_s: float = 0.0  # worst observed timestamp regression
    quarantined: int = 0  # records dropped as unusable (invalid fields,
    #   too late to place into an already-emitted window, or inside an
    #   unreadable segment)
    server_dropped: int = 0  # reports lost on the collection path before
    #   the store (the trace server's UDP drop counter), so end-to-end
    #   loss accounting lives in one report
    spill_overflow: int = 0  # reports evicted from a reporter's bounded
    #   spill buffer while the ingest server was unreachable — loss on
    #   the client side of the collection path

    @property
    def dirty(self) -> bool:
        """Whether the pass hit any fault at all."""
        return bool(
            self.parse_failures
            or self.truncated_lines
            or self.duplicates
            or self.reordered
            or self.quarantined
            or self.server_dropped
            or self.spill_overflow
        )

    def reset(self) -> None:
        """Zero every counter (reused across iterations of a reader)."""
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))(0))

    def merge(self, other: TraceHealth) -> None:
        """Fold another pass's counters into this one."""
        self.lines_read += other.lines_read
        self.records_ok += other.records_ok
        self.parse_failures += other.parse_failures
        self.truncated_lines += other.truncated_lines
        self.duplicates += other.duplicates
        self.reordered += other.reordered
        self.max_reorder_depth_s = max(
            self.max_reorder_depth_s, other.max_reorder_depth_s
        )
        self.quarantined += other.quarantined
        self.server_dropped += other.server_dropped
        self.spill_overflow += other.spill_overflow

    def rows(self) -> list[tuple[str, object]]:
        """(label, value) rows for table rendering."""
        return [
            ("lines read", self.lines_read),
            ("records ok", self.records_ok),
            ("parse failures", self.parse_failures),
            ("truncated lines", self.truncated_lines),
            ("duplicates dropped", self.duplicates),
            ("reordered records", self.reordered),
            ("max reorder depth (s)", round(self.max_reorder_depth_s, 1)),
            ("quarantined records", self.quarantined),
            ("server drops (collection)", self.server_dropped),
            ("spill overflow (reporter)", self.spill_overflow),
        ]
