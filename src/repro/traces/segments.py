"""Segmented, self-recovering trace storage for long campaigns.

A two-month, 120 GB collection cannot live in one giant JSONL file: a
torn tail puts the entire artifact at risk, nothing is fingerprinted
until the end, and recovery would mean re-scanning everything.
:class:`SegmentedTraceStore` instead rotates bounded JSONL(.gz)
segments under a manifest.  A segment is *sealed* — fsynced, its
uncompressed content fingerprinted with sha256, and published in the
atomically-replaced manifest — the moment it fills; after a crash only
the single unsealed (active) segment is in an unknown state.

:meth:`SegmentedTraceStore.recover` re-verifies the sealed prefix,
quarantines unreadable sealed segments, truncates a torn final JSONL
line or gzip tail of the active segment, and reopens for append exactly
at the recovery point, accumulating everything it repaired into a
:class:`~repro.traces.health.TraceHealth`.  :meth:`rollback` cuts the
store back to a checkpoint's record count so a resumed campaign rejoins
byte-for-byte.  :class:`SegmentedTraceReader` is the matching
multi-segment read path — a re-iterable drop-in wherever analytics
(``iter_windows`` included) expects a time-ordered report stream.

Compressed segments are written with a zeroed gzip mtime so identical
content compresses to identical bytes across runs; note that a
recovered-or-rolled-back compressed segment continues as a second gzip
member, so equivalence for ``.gz`` traces is content-level
(:meth:`content_sha256`) while plain JSONL traces are byte-identical.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
import re
import zlib
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, TextIO

from repro.ioutil import atomic_write_bytes
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.health import TraceHealth
from repro.traces.records import PeerReport
from repro.traces.store import (
    TraceReader,
    TraceStoreClosedError,
    sanitize,
)

#: Manifest file name inside a segment directory.
MANIFEST_NAME = "manifest.json"
#: Format version stamped into every manifest.
MANIFEST_VERSION = 1

_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.jsonl(\.gz)?$")
_QUARANTINE_SUFFIX = ".quarantined"


class SegmentRecoveryError(RuntimeError):
    """The segment directory cannot be recovered automatically."""


@dataclass(frozen=True)
class SegmentInfo:
    """One sealed segment's manifest entry."""

    name: str
    records: int
    sha256: str  # fingerprint of the uncompressed content bytes


def _segment_index(name: str) -> int | None:
    """The 1-based index encoded in a segment file name, else None."""
    match = _SEGMENT_RE.match(name)
    return int(match.group(1)) if match else None


def _scan_content(data: bytes) -> tuple[int, bytes, bool]:
    """Split raw segment bytes into ``(records, complete_prefix, torn)``.

    A record is a ``\\n``-terminated line; trailing bytes past the last
    newline are a torn write and excluded from the prefix.
    """
    cut = data.rfind(b"\n") + 1
    prefix = data[:cut]
    return prefix.count(b"\n"), prefix, cut != len(data)


def _read_segment_bytes(path: Path, compressed: bool) -> tuple[bytes, bool]:
    """Read a segment's uncompressed bytes; ``(data, damaged_tail)``.

    Gzip segments are decompressed member by member with raw ``zlib``
    rather than :func:`gzip.open`, because the stdlib reader discards
    whatever it decoded in the read call that hits a torn tail — the
    exact bytes recovery needs to salvage.  A member cut off mid-stream
    (no end-of-stream marker) or damaged compressed bytes flag the tail
    as damaged; everything decodable before the tear is returned.
    """
    raw = path.read_bytes()
    if not compressed:
        return raw, False
    out: list[bytes] = []
    damaged = False
    remaining = raw
    while remaining:
        decomp = zlib.decompressobj(wbits=31)  # gzip-wrapped member
        try:
            out.append(decomp.decompress(remaining))
        except zlib.error:
            damaged = True
            break
        if not decomp.eof:
            damaged = True  # member ends before its end-of-stream marker
            break
        remaining = decomp.unused_data
    return b"".join(out), damaged


class SegmentedTraceStore:
    """Appends reports across rotating, individually-sealed segments.

    ``records_per_segment`` bounds each segment; the active segment is
    created lazily on first append and sealed (fsync + fingerprint +
    atomic manifest update) when full, on :meth:`close`, and before each
    checkpoint via :meth:`sync`.  Construction requires a fresh (or
    empty) directory — reopening an existing segmented trace goes
    through :meth:`recover`, which is the only safe way to append to a
    directory a crashed campaign left behind.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        records_per_segment: int = 100_000,
        compress: bool = False,
        flush_every: int = 256,
        fsync_on_flush: bool = False,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if records_per_segment < 1:
            raise ValueError("records_per_segment must be >= 1")
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.directory = Path(directory)
        self.records_per_segment = records_per_segment
        self.compress = compress
        self.flush_every = flush_every
        self.fsync_on_flush = fsync_on_flush
        self._obs = obs
        #: What the most recent :meth:`recover` repaired (clean here).
        self.health = TraceHealth()
        self.directory.mkdir(parents=True, exist_ok=True)
        if (self.directory / MANIFEST_NAME).exists() or self._disk_segments():
            raise FileExistsError(
                f"{self.directory} already holds a segmented trace; "
                "reopen it with SegmentedTraceStore.recover()"
            )
        self._sealed: list[SegmentInfo] = []
        self._active_index = 1
        self._closed = False
        self._fh: TextIO | None = None
        self._raw: BinaryIO | None = None
        self._reset_active()
        self._write_manifest()

    # -- naming / layout ---------------------------------------------------

    def _segment_name(self, index: int) -> str:
        suffix = ".jsonl.gz" if self.compress else ".jsonl"
        return f"seg-{index:08d}{suffix}"

    def _segment_path(self, index: int) -> Path:
        return self.directory / self._segment_name(index)

    def _disk_segments(self) -> list[tuple[int, Path]]:
        """(index, path) for every segment file on disk, index order."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.iterdir() if self.directory.exists() else ():
            index = _segment_index(path.name)
            if index is not None:
                found.append((index, path))
        found.sort()
        return found

    # -- append path -------------------------------------------------------

    def _reset_active(self) -> None:
        self._active_records = 0
        self._active_hash = hashlib.sha256()
        self._pending = 0

    def _open_active(self) -> None:
        path = self._segment_path(self._active_index)
        raw = open(path, "ab")
        if self.compress:
            # mtime=0 keeps compressed bytes deterministic across runs;
            # appending after recovery starts a new gzip member, which
            # every reader here handles transparently.
            gz = gzip.GzipFile(
                filename="", mode="ab", fileobj=raw, compresslevel=4, mtime=0
            )
            self._fh = io.TextIOWrapper(gz, encoding="utf-8", newline="")
        else:
            self._fh = io.TextIOWrapper(raw, encoding="utf-8", newline="")
        self._raw = raw

    def _close_active_file(self, *, durable: bool) -> None:
        if self._fh is None:
            return
        self._fh.close()  # for gzip: writes the member trailer into raw
        raw = self._raw
        if raw is not None and not raw.closed:
            raw.flush()
            if durable:
                os.fsync(raw.fileno())
            raw.close()
        self._fh = None
        self._raw = None

    def append(self, report: PeerReport) -> None:
        """Append one report to the active segment (rotating if full)."""
        self.append_line(report.to_json())

    def append_line(self, line: str) -> None:
        """Append one raw line (the dirty-collection path writes these)."""
        if self._closed:
            raise TraceStoreClosedError(
                f"cannot append to closed segmented store {self.directory}; "
                "reopen it with SegmentedTraceStore.recover()"
            )
        if self._fh is None:
            self._open_active()
        assert self._fh is not None
        data = line if line.endswith("\n") else line + "\n"
        self._fh.write(data)
        self._active_hash.update(data.encode("utf-8"))
        self._active_records += 1
        self._pending += 1
        if self._obs.enabled:
            self._obs.count("trace.bytes_written", len(data))
        if self._active_records >= self.records_per_segment:
            self._seal_active()
        elif self._pending >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS (and to disk when fsyncing)."""
        self._pending = 0
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync_on_flush and self._raw is not None:
            os.fsync(self._raw.fileno())

    def sync(self) -> None:
        """Flush *and* fsync the active segment (checkpoint barrier).

        After ``sync()`` returns, every record appended so far is
        durable; a checkpoint that records ``len(store)`` can therefore
        always roll the store back to exactly that point.
        """
        self._pending = 0
        if self._fh is None:
            return
        self._fh.flush()
        if self._raw is not None:
            self._raw.flush()
            os.fsync(self._raw.fileno())

    def _seal_active(self) -> None:
        """Seal the active segment and publish it in the manifest."""
        if self._active_records == 0:
            self._close_active_file(durable=False)
            return
        self._close_active_file(durable=True)
        self._sealed.append(
            SegmentInfo(
                name=self._segment_name(self._active_index),
                records=self._active_records,
                sha256=self._active_hash.hexdigest(),
            )
        )
        self._write_manifest()
        self._obs.count("trace.segment_rotations")
        self._active_index += 1
        self._reset_active()

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "compress": self.compress,
            "records_per_segment": self.records_per_segment,
            "segments": [
                {"name": s.name, "records": s.records, "sha256": s.sha256}
                for s in self._sealed
            ],
        }
        atomic_write_bytes(
            self.directory / MANIFEST_NAME,
            (json.dumps(payload, sort_keys=True, indent=1) + "\n").encode("utf-8"),
        )

    # -- sizing / digests ---------------------------------------------------

    def __len__(self) -> int:
        return sum(s.records for s in self._sealed) + self._active_records

    @property
    def sealed_segments(self) -> tuple[SegmentInfo, ...]:
        """Manifest entries of every sealed segment, in order."""
        return tuple(self._sealed)

    def content_sha256(self) -> str:
        """sha256 over the uncompressed content of all segments, in order.

        The store-level identity used by kill/recover equivalence tests;
        for uncompressed traces it equals the sha256 of the concatenated
        segment files.  Requires the store to be closed (or synced).
        """
        digest = hashlib.sha256()
        for _, path in self._disk_segments():
            data, _ = _read_segment_bytes(path, path.suffix == ".gz")
            digest.update(data)
        return digest.hexdigest()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Seal the active segment and close the store (idempotent)."""
        if self._closed:
            return
        if self._active_records > 0:
            self._seal_active()
        else:
            self._close_active_file(durable=False)
        self._closed = True

    def __enter__(self) -> SegmentedTraceStore:
        """Enter a ``with`` block; the store closes (and seals) on exit."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Seal and close when the ``with`` block ends."""
        self.close()

    # -- recovery ------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        records_per_segment: int | None = None,
        flush_every: int = 256,
        fsync_on_flush: bool = False,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> SegmentedTraceStore:
        """Reopen a (possibly crashed) segmented trace for append.

        The scan re-fingerprints every sealed segment (quarantining any
        whose content no longer matches its manifest entry), seals any
        full segment the crash left unpublished (a mid-rotation kill),
        truncates a torn JSONL line or gzip tail of the active segment,
        and reopens for append exactly at the recovery point.  What was
        repaired or lost is accounted in the returned store's
        :attr:`health` — losses are never silent.  ``records_per_segment``
        overrides the manifest's value only when the manifest itself was
        destroyed.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        health = TraceHealth()
        store = cls.__new__(cls)
        store.directory = directory
        store.flush_every = flush_every
        store.fsync_on_flush = fsync_on_flush
        store._obs = obs
        store.health = health
        store._closed = False
        store._fh = None
        store._raw = None

        manifest = cls._load_manifest(manifest_path)
        disk = {
            index: path
            for index, path in sorted(
                (i, p)
                for i, p in cls._scan_disk(directory)
            )
        }
        if manifest is None and not disk:
            raise SegmentRecoveryError(
                f"{directory}: not a segmented trace "
                "(no readable manifest, no segments)"
            )
        if manifest is not None:
            store.compress = bool(manifest.get("compress", False))
            declared = manifest.get("records_per_segment")
            store.records_per_segment = (
                declared
                if isinstance(declared, int)
                else (records_per_segment or 100_000)
            )
            entries = manifest.get("segments")
            sealed_entries = entries if isinstance(entries, list) else []
        else:
            # Manifest destroyed: infer layout and rebuild it from the
            # segments themselves (every segment gets a full scan).
            first = next(iter(disk.values()))
            store.compress = first.suffix == ".gz"
            store.records_per_segment = records_per_segment or 100_000
            sealed_entries = []

        # 1. Verify the sealed prefix against its fingerprints.
        sealed: list[SegmentInfo] = []
        last_sealed_index = 0
        for entry in sealed_entries:
            info = SegmentInfo(
                name=str(entry["name"]),
                records=int(entry["records"]),
                sha256=str(entry["sha256"]),
            )
            index = _segment_index(info.name)
            path = directory / info.name
            if index is None or not path.exists():
                health.quarantined += info.records
                continue
            data, damaged = _read_segment_bytes(path, path.suffix == ".gz")
            records, prefix, _ = _scan_content(data)
            digest = hashlib.sha256(prefix).hexdigest()
            if damaged or records != info.records or digest != info.sha256:
                cls._quarantine(path)
                health.quarantined += info.records
                disk.pop(index, None)
                continue
            health.lines_read += records
            health.records_ok += records
            sealed.append(info)
            last_sealed_index = max(last_sealed_index, index)
            disk.pop(index, None)

        # 2. Scan trailing unsealed segments in index order: a full one
        #    was sealed-but-unpublished (mid-rotation kill) — publish it;
        #    the first partial one becomes the active segment again.
        active_index = last_sealed_index + 1
        active_records = 0
        active_hash = hashlib.sha256()
        active_assigned = False
        for index in sorted(disk):
            path = disk[index]
            if index <= last_sealed_index or active_assigned:
                # Out-of-sequence leftovers (or anything after the first
                # partial segment) cannot be ordered into the stream.
                data, _ = _read_segment_bytes(path, path.suffix == ".gz")
                records, _, _ = _scan_content(data)
                cls._quarantine(path)
                health.quarantined += records
                continue
            data, damaged = _read_segment_bytes(path, path.suffix == ".gz")
            records, prefix, torn = _scan_content(data)
            if damaged or torn:
                health.truncated_lines += 1
                cls._rewrite_segment(path, prefix, store.compress)
            health.lines_read += records
            health.records_ok += records
            if records >= store.records_per_segment:
                sealed.append(
                    SegmentInfo(
                        name=path.name,
                        records=records,
                        sha256=hashlib.sha256(prefix).hexdigest(),
                    )
                )
                active_index = index + 1
                continue
            active_index = index
            active_records = records
            active_hash.update(prefix)
            active_assigned = True

        store._sealed = sealed
        store._active_index = active_index
        store._reset_active()
        store._active_records = active_records
        store._active_hash = active_hash
        store._write_manifest()
        if obs.enabled:
            obs.count("trace.recovery.runs")
            obs.count("trace.recovery.quarantined_records", health.quarantined)
            obs.count("trace.recovery.truncated_lines", health.truncated_lines)
        return store

    @staticmethod
    def _load_manifest(path: Path) -> dict[str, object] | None:
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            manifest = json.loads(raw)
        except ValueError:
            return None
        if not isinstance(manifest, dict):
            return None
        return manifest

    @staticmethod
    def _scan_disk(directory: Path) -> list[tuple[int, Path]]:
        found: list[tuple[int, Path]] = []
        for path in directory.iterdir():
            index = _segment_index(path.name)
            if index is not None:
                found.append((index, path))
        return found

    @staticmethod
    def _quarantine(path: Path) -> None:
        os.replace(path, path.with_name(path.name + _QUARANTINE_SUFFIX))

    @staticmethod
    def _rewrite_segment(path: Path, content: bytes, compress: bool) -> None:
        """Rewrite a segment to hold exactly ``content`` (repair path)."""
        if not compress:
            atomic_write_bytes(path, content)
            return
        buffer = io.BytesIO()
        with gzip.GzipFile(
            filename="", mode="wb", fileobj=buffer, compresslevel=4, mtime=0
        ) as gz:
            gz.write(content)
        atomic_write_bytes(path, buffer.getvalue())

    # -- rollback (resume-from-checkpoint) ------------------------------------

    def rollback(self, total_records: int) -> None:
        """Discard every record past ``total_records``.

        A checkpoint records ``len(store)`` at a durable cut; resuming
        replays the simulation from that cut, so the store must first
        forget everything the dead run appended afterwards — otherwise
        the replay would duplicate it.  Rolling *forward* is impossible
        and raises :class:`SegmentRecoveryError` (it would mean the
        checkpoint outlived trace data that was supposedly durable).
        """
        if self._closed:
            raise TraceStoreClosedError(
                f"cannot roll back closed segmented store {self.directory}"
            )
        if total_records < 0:
            raise ValueError("total_records must be >= 0")
        if total_records > len(self):
            raise SegmentRecoveryError(
                f"{self.directory}: checkpoint expects {total_records} "
                f"records but only {len(self)} survived recovery; the "
                "trace lost durable data and cannot rejoin the checkpoint"
            )
        if self._obs.enabled:
            self._obs.count("trace.recovery.rollbacks")
            self._obs.count(
                "trace.recovery.rolled_back_records", len(self) - total_records
            )
        self._close_active_file(durable=False)
        # Sealed prefix that survives the cut intact.
        kept: list[SegmentInfo] = []
        cumulative = 0
        for info in self._sealed:
            if cumulative + info.records <= total_records:
                kept.append(info)
                cumulative += info.records
            else:
                break
        remaining = total_records - cumulative  # records inside the cut segment
        # Every file past the kept prefix — dropped sealed segments plus
        # the active segment — is truncated (the one holding the cut) or
        # deleted (everything after it), in index order.
        drop: list[Path] = [self.directory / info.name for info in self._sealed[len(kept):]]
        active_path = self._segment_path(self._active_index)
        if active_path.exists() and active_path not in drop:
            drop.append(active_path)
        drop.sort(key=lambda p: _segment_index(p.name) or 0)
        new_active = False
        for path in drop:
            if remaining == 0:
                path.unlink()
                continue
            data, _ = _read_segment_bytes(path, path.suffix == ".gz")
            records, _, _ = _scan_content(data)
            if records < remaining:
                raise SegmentRecoveryError(
                    f"{self.directory}: {path.name} holds {records} records "
                    f"but the checkpoint cut needs {remaining}"
                )
            offset = 0
            for _ in range(remaining):
                offset = data.index(b"\n", offset) + 1
            self._rewrite_segment(path, data[:offset], self.compress)
            self._become_active(path, remaining)
            remaining = 0
            new_active = True
        self._sealed = kept
        if not new_active:
            # Cut lands exactly on a sealed boundary: start a fresh
            # (lazily-created) active segment right after the prefix.
            last = _segment_index(kept[-1].name) if kept else 0
            self._active_index = (last or 0) + 1
            self._reset_active()
        self._write_manifest()

    def _become_active(self, path: Path, records: int) -> None:
        """Make a (just truncated) segment the active append target."""
        index = _segment_index(path.name)
        assert index is not None
        data, _ = _read_segment_bytes(path, path.suffix == ".gz")
        self._active_index = index
        self._reset_active()
        self._active_records = records
        self._active_hash.update(data)


class SegmentedTraceReader:
    """Re-iterable multi-segment read path (strict or tolerant).

    Iterates every segment of a directory in index order — sealed or
    not — as one continuous report stream, so ``iter_windows`` and all
    ``repro.core`` analytics consume a segmented campaign trace exactly
    like a single-file one.  With ``tolerant=True`` each segment is read
    through the tolerant parser and the combined stream is re-sorted
    with :func:`~repro.traces.store.sanitize` (reordering can straddle a
    segment boundary); :attr:`health` accumulates the whole pass.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        tolerant: bool = False,
        slack_s: float = 600.0,
    ) -> None:
        self.directory = Path(directory)
        self.tolerant = tolerant
        self.slack_s = slack_s
        #: Accounting of the most recent complete iteration.
        self.health = TraceHealth()

    def segment_paths(self) -> list[Path]:
        """Every segment file in the directory, in index order."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.iterdir():
            index = _segment_index(path.name)
            if index is not None:
                found.append((index, path))
        return [path for _, path in sorted(found)]

    def _raw_reports(self) -> Iterator[PeerReport]:
        for path in self.segment_paths():
            reader = TraceReader(path, tolerant=self.tolerant)
            yield from reader
            self.health.merge(reader.health)

    def __iter__(self) -> Iterator[PeerReport]:
        self.health.reset()
        if not self.tolerant:
            yield from self._raw_reports()
            return
        yield from sanitize(
            self._raw_reports(), slack_s=self.slack_s, health=self.health
        )
