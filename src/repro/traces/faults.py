"""Fault injection on the report collection path.

The paper's traces crossed the public Internet over UDP before landing
on a trace server.  :class:`FaultyChannel` reproduces what such a path
does to a report stream — bursty loss (Gilbert–Elliott), duplication,
bounded reordering and line-level corruption — by wrapping any trace
store.  Analytics hardened with the tolerant readers must survive a
trace written through this channel; that is what the dirty-trace tests
and the fault-tolerance benchmark assert.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.traces.records import PeerReport
from repro.traces.store import TraceStore


@dataclass(frozen=True)
class ChannelFaults:
    """Fault intensities of a collection channel.

    ``loss_rate`` is the long-run fraction of reports lost; losses come
    in bursts of mean length ``burst_length`` (Gilbert–Elliott), as UDP
    loss does during congestion episodes.  ``duplicate_rate`` and
    ``reorder_rate`` are per-delivered-report probabilities;
    ``reorder_depth`` is how many later deliveries overtake a held-back
    report.  ``corrupt_rate`` reports are written as truncated lines.
    """

    loss_rate: float = 0.0
    burst_length: float = 4.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_depth: int = 3
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            v = getattr(self, name)
            if not math.isfinite(v) or not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if not math.isfinite(self.burst_length) or self.burst_length < 1.0:
            raise ValueError(f"burst_length must be >= 1, got {self.burst_length}")
        if self.reorder_depth < 1:
            raise ValueError(f"reorder_depth must be >= 1, got {self.reorder_depth}")

    @property
    def any_active(self) -> bool:
        """Whether this configuration injects any fault at all."""
        return bool(
            self.loss_rate or self.duplicate_rate or self.reorder_rate or self.corrupt_rate
        )


@dataclass
class ChannelCounters:
    """What a :class:`FaultyChannel` did to the stream it carried.

    Invariant: ``delivered + corrupted == offered - dropped + duplicated``
    once the channel is flushed.
    """

    offered: int = 0  # reports handed to the channel
    delivered: int = 0  # clean lines written to the store
    dropped: int = 0  # lost in a loss burst
    duplicated: int = 0  # extra copies written
    reordered: int = 0  # reports released out of arrival order
    corrupted: int = 0  # lines written truncated/damaged


class FaultyChannel:
    """A trace store adapter that damages the stream passing through it.

    Wraps any store with an ``append(report)`` method; corruption
    additionally needs ``append_line(raw)`` (as on
    :class:`~repro.traces.store.JsonlTraceStore`) — without it the
    corrupted report is simply dropped, still counted as corrupted.

    Loss follows a two-state Gilbert–Elliott chain whose stationary
    loss probability equals ``faults.loss_rate`` with mean burst length
    ``faults.burst_length``.  Reordering holds one report back and
    releases it after ``reorder_depth`` subsequent deliveries.  Call
    :meth:`flush` (or close / leave the ``with`` block) to release any
    held report.
    """

    def __init__(
        self, store: TraceStore, faults: ChannelFaults, *, seed: int = 0
    ) -> None:
        self.store = store
        self.faults = faults
        self.counters = ChannelCounters()
        self._rng = random.Random(seed)
        self._in_burst = False
        # Chain transition rates giving stationary P(loss) = loss_rate
        # and mean burst length = burst_length.
        self._p_exit = 1.0 / faults.burst_length
        if faults.loss_rate > 0.0:
            self._p_enter = faults.loss_rate * self._p_exit / (1.0 - faults.loss_rate)
        else:
            self._p_enter = 0.0
        self._held: PeerReport | None = None
        self._held_for = 0

    def append(self, report: PeerReport) -> None:
        """Carry one report across the faulty channel."""
        c = self.counters
        c.offered += 1
        if self._p_enter > 0.0:
            if self._in_burst:
                self._in_burst = self._rng.random() >= self._p_exit
            else:
                self._in_burst = self._rng.random() < self._p_enter
            if self._in_burst:
                c.dropped += 1
                return
        if (
            self._held is None
            and self.faults.reorder_rate > 0.0
            and self._rng.random() < self.faults.reorder_rate
        ):
            self._held = report
            self._held_for = 0
            return
        self._deliver(report)
        if self._held is not None:
            self._held_for += 1
            if self._held_for >= self.faults.reorder_depth:
                held, self._held = self._held, None
                c.reordered += 1
                self._deliver(held)

    def _deliver(self, report: PeerReport) -> None:
        c = self.counters
        if (
            self.faults.corrupt_rate > 0.0
            and self._rng.random() < self.faults.corrupt_rate
        ):
            c.corrupted += 1
            append_line = getattr(self.store, "append_line", None)
            if append_line is not None:
                line = report.to_json()
                cut = self._rng.randint(1, max(1, len(line) - 1))
                append_line(line[:cut])
            return
        self.store.append(report)
        c.delivered += 1
        if (
            self.faults.duplicate_rate > 0.0
            and self._rng.random() < self.faults.duplicate_rate
        ):
            self.store.append(report)
            c.duplicated += 1
            c.delivered += 1

    def flush(self) -> None:
        """Release a held-back report (end of stream)."""
        if self._held is not None:
            held, self._held = self._held, None
            self.counters.reordered += 1
            self._deliver(held)

    def close(self) -> None:
        """Flush, then close the wrapped store if it can be closed."""
        self.flush()
        close = getattr(self.store, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> FaultyChannel:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
