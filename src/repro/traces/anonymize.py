"""Trace anonymisation: keyed, ISP-preserving IP pseudonymisation.

A study like Magellan cannot publish raw peer IPs.  The standard
requirement for *topology* traces is a pseudonymisation that is

- deterministic under a secret key (the same peer maps to the same
  pseudonym everywhere, so graphs survive),
- ISP-preserving (the paper's locality analyses must still work), and
- non-invertible without the key.

``IspPreservingAnonymizer`` permutes the host part of every address
*within its owning CIDR block* using a keyed Feistel-style permutation,
so every pseudonym stays inside its original block — the IP-to-ISP
database maps it exactly as before — while host identities are hidden.
Unmapped addresses (e.g. infrastructure servers) are permuted within
the full 32-bit space minus nothing in particular; they stay unmapped
only if they avoid every block, so they are instead remapped within a
dedicated unmapped range to guarantee they never collide into an ISP.
"""

from __future__ import annotations

import hashlib

from repro.network.ip import CidrBlock
from repro.network.isp import IspDatabase
from repro.traces.records import PartnerRecord, PeerReport

#: Pseudonym space for addresses the database cannot map (servers etc.):
#: a reserved block that no ISP in any registry uses.
UNMAPPED_BLOCK = CidrBlock.parse("240.0.0.0/8")


class IspPreservingAnonymizer:
    """Keyed pseudonymisation of trace IPs that keeps ISP lookups intact."""

    def __init__(self, db: IspDatabase, *, key: bytes | str = b"") -> None:
        self.db = db
        self.key = key.encode() if isinstance(key, str) else key
        self._blocks: dict[str, list[CidrBlock]] = {
            isp.name: list(isp.blocks) for isp in db.isps
        }

    # -- keyed permutation within a power-of-two domain ----------------------

    def _round_value(self, data: bytes, round_no: int, bits: int) -> int:
        digest = hashlib.sha256(
            self.key + round_no.to_bytes(1, "big") + data
        ).digest()
        return int.from_bytes(digest[:4], "big") & ((1 << bits) - 1)

    def _permute(self, value: int, bits: int, domain_tag: bytes) -> int:
        """Keyed permutation of ``value`` within ``2**bits`` values.

        A balanced 4-round Feistel network over ``2 * half`` bits (a
        bijection for any key), plus cycle-walking to shrink odd-width
        domains: re-encrypt until the result lands back inside
        ``2**bits`` (expected <= 2 iterations).
        """
        if bits == 0:
            return value
        half = (bits + 1) // 2
        mask = (1 << half) - 1
        x = value
        while True:
            left = x >> half
            right = x & mask
            for round_no in range(4):
                f = self._round_value(
                    domain_tag + right.to_bytes(4, "big"), round_no, half
                )
                left, right = right, left ^ f
            x = (left << half) | right
            if x < (1 << bits):
                return x

    # -- address mapping ---------------------------------------------------------

    def anonymize_ip(self, address: int) -> int:
        """Pseudonym for ``address``; same ISP block, hidden host."""
        name = self.db.lookup(address)
        if name is None:
            offset = self._permute(
                address & (UNMAPPED_BLOCK.size - 1),
                32 - UNMAPPED_BLOCK.prefix,
                b"unmapped",
            )
            return UNMAPPED_BLOCK.address(offset)
        for block in self._blocks[name]:
            if address in block:
                bits = 32 - block.prefix
                host = address - block.base
                tag = block.base.to_bytes(4, "big")
                return block.address(self._permute(host, bits, tag))
        raise AssertionError("database lookup disagrees with block list")

    def anonymize_report(self, report: PeerReport) -> PeerReport:
        """A copy of ``report`` with every IP pseudonymised."""
        partners = tuple(
            PartnerRecord(
                ip=self.anonymize_ip(p.ip),
                port=p.port,
                sent_segments=p.sent_segments,
                recv_segments=p.recv_segments,
            )
            for p in report.partners
        )
        return PeerReport(
            time=report.time,
            peer_ip=self.anonymize_ip(report.peer_ip),
            channel_id=report.channel_id,
            buffer_fill=report.buffer_fill,
            playback_position=report.playback_position,
            download_capacity_kbps=report.download_capacity_kbps,
            upload_capacity_kbps=report.upload_capacity_kbps,
            recv_rate_kbps=report.recv_rate_kbps,
            sent_rate_kbps=report.sent_rate_kbps,
            partners=partners,
        )
