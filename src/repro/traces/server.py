"""Standalone trace server (paper Sec. 3.2).

Reports arrive over UDP, so a configurable fraction is lost in flight.
Accepted reports are appended to a trace store.  The server keeps
simple counters so experiments can report collection statistics, like
the paper's '120 GB of traces'.
"""

from __future__ import annotations

import random

from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.health import TraceHealth
from repro.traces.records import PeerReport
from repro.traces.store import TraceStore


class TraceServer:
    """Collects measurement reports from peers."""

    def __init__(
        self,
        store: TraceStore,
        *,
        loss_rate: float = 0.01,
        seed: int = 0,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        self.store = store
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._obs = obs
        self.received = 0
        self.dropped = 0
        # Drops already folded into a TraceHealth.  Deliberately reset on
        # resume: each process folds into a fresh TraceHealth, so the
        # first post-restore fold must re-add every restored drop.
        self._folded_dropped = 0  # repro: noqa[REP101] reset on resume; each process folds into a fresh TraceHealth

    def receive(self, report: PeerReport) -> bool:
        """Deliver one UDP report; False if it was lost in flight."""
        if self.loss_rate > 0.0 and self._rng.random() < self.loss_rate:
            self.dropped += 1
            self._obs.count("trace.reports_dropped")
            return False
        self.store.append(report)
        self.received += 1
        self._obs.count("trace.reports_received")
        return True

    def fold_into(self, health: TraceHealth) -> TraceHealth:
        """Add this server's collection-side drops to ``health``.

        Storage-level accounting (tolerant readers, segment recovery)
        and collection-level loss then live in one report instead of the
        drop counter dying unread with the server object.  Only the
        drops since the previous fold are added, so periodic folding
        (a mid-campaign health snapshot plus the final one) never
        double-counts a loss.
        """
        delta = self.dropped - self._folded_dropped
        health.server_dropped += delta
        self._folded_dropped = self.dropped
        self._obs.count("trace.reports_folded", delta)
        return health
