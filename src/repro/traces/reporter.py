"""Peer-side report construction.

``build_report`` snapshots a peer's state into a :class:`PeerReport`
and advances the per-link 'reported' counters, so the next report
carries only the segments exchanged since this one — the differential
counting the paper's measurement code performs on each peer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.traces.records import PartnerRecord, PeerReport

if TYPE_CHECKING:  # avoid a circular runtime import with repro.simulator
    from repro.simulator.peer import Peer


def port_for_peer(peer_id: int) -> int:
    """Deterministic synthetic TCP/UDP port for a peer."""
    return 20_000 + (peer_id % 40_000)


def build_report(peer: Peer, now: float) -> PeerReport:
    """Snapshot ``peer`` into a report and roll its reported counters."""
    partners: list[PartnerRecord] = []
    for pid, link in peer.partners.items():
        sent_delta, recv_delta = link.unreported_deltas()
        partners.append(
            PartnerRecord(
                ip=link.partner_ip,
                port=port_for_peer(pid),
                sent_segments=int(sent_delta),
                recv_segments=int(recv_delta),
            )
        )
        link.mark_reported()
    return PeerReport(
        time=now,
        peer_ip=peer.ip,
        channel_id=peer.channel_id,
        buffer_fill=peer.buffer_fill,
        playback_position=peer.playback_position,
        download_capacity_kbps=peer.download_kbps,
        upload_capacity_kbps=peer.upload_kbps,
        recv_rate_kbps=peer.recv_rate_kbps,
        sent_rate_kbps=peer.sent_rate_kbps,
        partners=tuple(partners),
    )
