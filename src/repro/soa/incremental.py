"""Incremental window analytics: metrics from edge deltas (repro.soa).

Per-window structural analytics — degree histograms, active-topology
edge reciprocity and stable-graph clustering — normally rebuild a
:class:`~repro.core.snapshots.TopologySnapshot` per observation window
and run the CSR kernels on it.  Consecutive windows of a live-streaming
trace share most of their topology, so :class:`IncrementalWindowMetrics`
instead maintains the window state under *edge deltas*:

- the directed active edge set and its node count (the bilateral-pair
  count feeding reciprocity is recounted per window — one C-speed set
  intersection beats per-edge bookkeeping at live-streaming churn);
- the stable-peer undirected projection with per-node triangle counts
  (clustering), updated edge-by-edge via neighbour-set intersections;
- per-reporter degree triples with histogram counters touched only
  when a peer's degrees change between windows.

Every maintained quantity is an **integer** (adjacency sets, triangle
counts, bilateral pairs, histogram buckets), so nothing can drift; the
float finalisation then evaluates *exactly* the kernels' expressions in
*exactly* the kernels' iteration order:

- reciprocity reuses :func:`repro.core.metrics._rho`, making the result
  bit-identical to ``edge_reciprocity(snapshot.active_compact())``;
- clustering replays the ``subgraph -> to_undirected -> freeze`` vertex
  ordering (a set comprehension over the stable-IP set) and sums
  ``overlap / (k * (k - 1))`` in that order, bit-identical to
  ``average_clustering(snapshot.stable_undirected_compact())``;
- degree histograms rebuild the sorted ``(degree, count)`` tuples from
  the maintained counters, equal to
  ``degree_distributions(snapshot)``.

``resync_every`` bounds the defensive surface: every N processed
windows the state is recomputed from scratch from the current window
(the integers are provably stable, but a full resync keeps any future
maintenance bug from persisting silently).  ``observe_incremental`` is
the drop-in driver mirroring :func:`repro.core.timeseries.observe`.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.core.metrics import _rho
from repro.graph.degree import DegreeDistribution
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.records import PeerReport
from repro.traces.store import iter_windows

if TYPE_CHECKING:
    from repro.core.timeseries import SnapshotSeries

Edge = tuple[int, int]


def _latest_reports(reports: Iterable[PeerReport]) -> dict[int, PeerReport]:
    """Latest report per IP — the same dedup ``build_snapshot`` applies."""
    latest: dict[int, PeerReport] = {}
    for report in reports:
        previous = latest.get(report.peer_ip)
        if previous is None or report.time >= previous.time:
            latest[report.peer_ip] = report
    return latest


class IncrementalWindowMetrics:
    """Window analytics maintained under edge deltas between snapshots."""

    def __init__(
        self, *, active_threshold: int = 10, resync_every: int = 64
    ) -> None:
        if resync_every < 0:
            raise ValueError("resync_every must be >= 0 (0 disables resync)")
        self.active_threshold = active_threshold
        self.resync_every = resync_every
        self.windows_processed = 0
        self.resyncs = 0
        # Directed active topology (all IPs): counts only.
        self._num_nodes = 0
        self._num_edges = 0
        self._bilateral = 0
        # Stable-peer undirected projection and triangle counts.
        self._proj: set[Edge] = set()  # normalised (min, max) pairs
        self._adj: dict[int, set[int]] = {}
        self._tri: dict[int, int] = {}
        # Degree histograms over the window's reporters.
        self._deg_by_ip: dict[int, tuple[int, int, int]] = {}
        self._hist: tuple[dict[int, int], dict[int, int], dict[int, int]] = (
            {},
            {},
            {},
        )
        # Current-window context for finalisation.
        self._latest: dict[int, PeerReport] = {}

    # -- window ingestion --------------------------------------------------

    def update(
        self, window_reports: Iterable[PeerReport]
    ) -> dict[str, object]:
        """Advance the state to the next window and return its metric row."""
        latest = _latest_reports(window_reports)
        self._latest = latest
        edges, proj, triples, transient = self._scan_window(latest)
        # Node count of the window's active graph: every reporter, plus
        # every transient endpoint of an active edge (as build_snapshot
        # unions reporters with edge endpoints).
        self._num_nodes = len(latest) + len(transient)
        self._num_edges = len(edges)
        self.windows_processed += 1
        if (
            self.resync_every
            and self.windows_processed % self.resync_every == 0
        ):
            self._resync(edges, proj, triples)
        else:
            self._apply_edge_deltas(edges)
            self._apply_projection_deltas(proj)
            self._apply_degree_deltas(triples)
        return self.row()

    def _scan_window(
        self, latest: dict[int, PeerReport]
    ) -> tuple[
        set[Edge], set[Edge], dict[int, tuple[int, int, int]], set[int]
    ]:
        """One pass over the window's reports: directed active edges
        (build_snapshot semantics), their stable undirected projection,
        the per-reporter degree triples and the transient endpoints."""
        thr = self.active_threshold
        edges: set[Edge] = set()
        proj: set[Edge] = set()
        triples: dict[int, tuple[int, int, int]] = {}
        transient: set[int] = set()
        eadd = edges.add
        padd = proj.add
        tadd = transient.add
        for ip, report in latest.items():
            partners = report.partners
            n_in = 0
            n_out = 0
            for partner in partners:
                recv_active = partner.recv_segments >= thr
                sent_active = partner.sent_segments >= thr
                if recv_active:
                    n_in += 1
                if sent_active:
                    n_out += 1
                pip = partner.ip
                if pip == ip:
                    continue
                if pip in latest:
                    if recv_active:
                        eadd((pip, ip))
                        padd((pip, ip) if pip < ip else (ip, pip))
                    if sent_active:
                        eadd((ip, pip))
                        padd((ip, pip) if ip < pip else (pip, ip))
                elif recv_active or sent_active:
                    tadd(pip)
                    if recv_active:
                        eadd((pip, ip))
                    if sent_active:
                        eadd((ip, pip))
            triples[ip] = (len(partners), n_in, n_out)
        return edges, proj, triples, transient

    def _apply_edge_deltas(self, edges: set[Edge]) -> None:
        """Recount bilateral pairs on the new edge set.

        Unlike clustering and degrees, the bilateral count has no
        per-edge update cheaper than a membership probe, so it is
        recounted directly: one integer probe per edge, no graph
        materialisation or float work.
        """
        self._bilateral = len(edges & {(v, u) for (u, v) in edges})

    def _apply_projection_deltas(self, proj: set[Edge]) -> None:
        adj = self._adj
        tri = self._tri
        for u, v in self._proj - proj:
            row_u = adj[u]
            row_v = adj[v]
            row_u.remove(v)
            row_v.remove(u)
            common = row_u & row_v
            if common:
                for w in common:
                    tri[w] -= 1
                k = len(common)
                tri[u] -= k
                tri[v] -= k
            if not row_u:
                del adj[u]
                tri.pop(u, None)
            if not row_v:
                del adj[v]
                tri.pop(v, None)
        for u, v in proj - self._proj:
            row_u = adj.get(u)
            if row_u is None:
                row_u = adj[u] = set()
            row_v = adj.get(v)
            if row_v is None:
                row_v = adj[v] = set()
            common = row_u & row_v
            if common:
                for w in common:
                    tri[w] = tri.get(w, 0) + 1
                k = len(common)
                tri[u] = tri.get(u, 0) + k
                tri[v] = tri.get(v, 0) + k
            row_u.add(v)
            row_v.add(u)
        self._proj = proj

    def _apply_degree_deltas(
        self, triples: dict[int, tuple[int, int, int]]
    ) -> None:
        by_ip = self._deg_by_ip
        hist = self._hist
        shift = self._hist_shift
        for ip, triple in triples.items():
            old = by_ip.get(ip)
            if old == triple:
                continue
            if old is not None:
                shift(hist, old, -1)
            shift(hist, triple, +1)
        for ip, old in by_ip.items():
            if ip not in triples:
                shift(hist, old, -1)
        self._deg_by_ip = triples

    @staticmethod
    def _hist_shift(
        hist: tuple[dict[int, int], dict[int, int], dict[int, int]],
        triple: tuple[int, int, int],
        delta: int,
    ) -> None:
        for counter, degree in zip(hist, triple):
            count = counter.get(degree, 0) + delta
            if count:
                counter[degree] = count
            else:
                counter.pop(degree, None)

    def _resync(
        self,
        edges: set[Edge],
        proj: set[Edge],
        triples: dict[int, tuple[int, int, int]],
    ) -> None:
        """Rebuild every maintained structure from the current window."""
        self.resyncs += 1
        self._bilateral = len(edges & {(v, u) for (u, v) in edges})
        self._proj = proj
        adj: dict[int, set[int]] = {}
        for u, v in proj:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        self._adj = adj
        tri: dict[int, int] = {}
        for u, v in proj:
            common = adj[u] & adj[v]
            if common:
                for w in common:
                    tri[w] = tri.get(w, 0) + 1
                k = len(common)
                tri[u] = tri.get(u, 0) + k
                tri[v] = tri.get(v, 0) + k
        # Each triangle edge saw it once; normalise to per-node counts.
        self._tri = {n: c // 3 for n, c in tri.items() if c}
        self._deg_by_ip = triples
        hist: tuple[dict[int, int], dict[int, int], dict[int, int]] = (
            {},
            {},
            {},
        )
        for triple in triples.values():
            self._hist_shift(hist, triple, +1)
        self._hist = hist

    # -- finalisation ------------------------------------------------------

    def row(self) -> dict[str, object]:
        """The current window's metric row (kernel-exact floats)."""
        return {
            "degrees": self.degree_distributions(),
            "reciprocity": self.reciprocity(),
            "clustering": self.clustering(),
        }

    def degree_distributions(self) -> dict[str, DegreeDistribution]:
        """Equal to ``metrics.degree_distributions`` on this window."""
        out: dict[str, DegreeDistribution] = {}
        for name, counter in zip(("partners", "in", "out"), self._hist):
            out[name] = DegreeDistribution(
                counts=tuple(sorted(counter.items())),
                num_peers=sum(counter.values()),
            )
        return out

    def reciprocity(self) -> float:
        """Bit-identical to ``edge_reciprocity(snapshot.active_compact())``."""
        return _rho(self._num_nodes, self._num_edges, self._bilateral)

    def clustering(self) -> float:
        """Bit-identical to the CSR ``average_clustering`` kernel.

        The kernel's float sum runs over the compact vertex order of
        ``stable_undirected_compact()``, which is the iteration order of
        the ``keep`` set ``DiGraph.subgraph`` builds from
        ``snapshot.stable_ips``; both set constructions are replayed
        here so the accumulation order — and the result — match bit for
        bit.
        """
        stable_ips = set(self._latest)
        keep = {n for n in stable_ips}  # noqa: C416 - replays subgraph's layout
        adj = self._adj
        tri = self._tri
        total = 0.0
        counted = 0
        for node in keep:
            row = adj.get(node)
            k = len(row) if row is not None else 0
            if k < 2:
                counted += 1
                continue
            overlap = 2 * tri.get(node, 0)
            total += overlap / (k * (k - 1))
            counted += 1
        if counted == 0:
            return 0.0
        return total / counted


def observe_incremental(
    reports: Iterable[PeerReport],
    *,
    window_seconds: float = 600.0,
    observe_every: float | None = None,
    start: float = 0.0,
    active_threshold: int = 10,
    resync_every: int = 64,
    obs: AnyObserver = NULL_OBSERVER,
) -> "SnapshotSeries":
    """Incremental counterpart of :func:`repro.core.timeseries.observe`.

    Streams the trace once, advancing the delta-maintained state on
    *every* window (deltas are between consecutive windows) and
    appending a ``{"degrees", "reciprocity", "clustering"}`` row for
    each observed one.  Rows are exactly equal to running the CSR
    kernels on per-window snapshots.
    """
    from repro.core.timeseries import SnapshotSeries

    if observe_every is None:
        observe_every = window_seconds
    if observe_every < window_seconds:
        raise ValueError("observe_every must be >= window_seconds")
    state = IncrementalWindowMetrics(
        active_threshold=active_threshold, resync_every=resync_every
    )
    series = SnapshotSeries()
    for window_start, window_reports in iter_windows(
        reports, window_seconds, start=start
    ):
        with obs.span("analytics.incremental_window"):
            row = state.update(window_reports)
        if obs.enabled:
            obs.count("analytics.incremental_windows")
        offset = window_start - start
        if (offset % observe_every) > 1e-9:
            continue
        series.append(window_start, row)
    return series
