"""Vectorised exchange engine over struct-of-arrays state.

``SoAExchangeEngine`` subclasses the object backend's
:class:`~repro.simulator.exchange.ExchangeEngine` and replaces the data
plane with flat array passes.  It runs in one of two numerics modes:

``numerics="exact"`` (engine ``soa-exact``)
    Request scoring is one gather + ``lexsort`` over every (viewer,
    supplier) pair, but the greedy demand fill and the capacity
    allocation keep the object backend's exact Python float
    accumulation order, so per-supplier sums — and therefore every
    draw, every report and the golden trace fingerprint — are
    bit-identical to the object backend.  This mode powers the
    cross-backend parity harness.

``numerics="fast"`` (engine ``soa``, the default)
    Every pass is vectorised end to end: the demand fill becomes a
    prefix-sum over lexsorted request rows, supplier allocation a
    segmented reduction, and depth propagation a segmented minimum
    over the *pre-round* depth column.  This renegotiates the
    bit-compatibility contract: float accumulation becomes pairwise
    (NumPy) instead of sequential (Python), and depth updates read the
    previous round's snapshot instead of sequentially-updated values.
    Requests, transfers and the RNG *draw sequence* of the control
    plane are unchanged; only low-order float bits and depth timing
    differ, so the fast mode carries its own golden fingerprint
    (DESIGN §12 records the renegotiation; the golden tests pin both
    backends independently).

Shared by both modes:

- ``emit_reports``: per-partner report deltas, truncations and ports
  for every due reporter are computed in one batch;
- ``_recover_estimates`` / ``_prune_idle_partners``: per-peer array
  scans instead of per-link attribute chasing.

Everything that consumes randomness — gossip, tracker contact,
bootstrap, supplier refinement — runs the *inherited* object-backend
code over the array-backed views, so all backends draw from the same
named streams in the same order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, cast

import numpy as np

from repro.simulator.exchange import ExchangeEngine, RoundStats
from repro.simulator.peer import Link, Peer
from repro.soa.state import SoALink, SoAPeer, SoAState
from repro.traces.records import PartnerRecord, PeerReport
from repro.traces.reporter import build_report


class SoAExchangeEngine(ExchangeEngine):
    """Struct-of-arrays implementation of the exchange engine.

    ``numerics`` selects the data-plane float contract: ``"fast"``
    (vectorised reductions, renegotiated accumulation order, own golden
    fingerprint) or ``"exact"`` (bit-identical to the object backend).
    """

    def __init__(self, *, numerics: str = "fast", **kwargs: Any) -> None:
        if numerics not in ("fast", "exact"):
            raise ValueError(f"unknown SoA numerics mode: {numerics!r}")
        super().__init__(**kwargs)
        self.numerics = numerics
        self.state = SoAState()
        # First-seen ISP -> dense index, for per-round fault tables.
        self._isp_index: dict[str, int] = {}

    # -- state management ---------------------------------------------------

    def _soa_peers(self) -> Iterator[SoAPeer]:
        for peer in self.peers.values():
            yield cast(SoAPeer, peer)

    def adopt_peer(self, peer: Peer) -> Peer:
        """Move a plain peer (and its links) into array rows."""
        if isinstance(peer, SoAPeer):
            return peer
        st = self.state
        slot = st.alloc_peer()
        view = SoAPeer.__new__(SoAPeer)
        view.st = st
        view.slot = slot
        for name in (
            "peer_id",
            "ip",
            "isp",
            "is_china",
            "is_server",
            "channel_id",
            "upload_kbps",
            "download_kbps",
            "class_name",
            "join_time",
            "depart_time",
            "last_tick",
            "next_report",
            "volunteered",
            "starving_ticks",
            "depth",
            "registered",
            "tracker_failures",
            "next_tracker_retry",
        ):
            setattr(view, name, getattr(peer, name))
        st.p_alive[slot] = True
        st.p_channel[slot] = peer.channel_id
        st.p_rate[slot] = self._consts(peer.channel_id).rate_kbps
        st.p_health[slot] = peer.health
        st.p_buffer[slot] = peer.buffer_fill
        st.p_recv[slot] = peer.recv_rate_kbps
        st.p_sent[slot] = peer.sent_rate_kbps
        st.p_playback[slot] = peer.playback_position
        st.p_depth[slot] = peer.depth
        st.p_up[slot] = peer.upload_kbps
        st.p_server[slot] = peer.is_server
        st.p_isp[slot] = self._isp_index.setdefault(peer.isp, len(self._isp_index))
        partners: dict[int, Link] = {}
        edge_ids: list[int] = []
        pid_ids: list[int] = []
        for pid, link in peer.partners.items():
            e = st.alloc_edge(
                rtt_ms=link.rtt_ms,
                cap_kbps=link.cap_kbps,
                est_kbps=link.est_kbps,
                established_at=link.established_at,
                partner_ip=link.partner_ip,
                penalty=link.penalty,
                sent=link.sent_segments,
                recv=link.recv_segments,
                rep_sent=link.reported_sent,
                rep_recv=link.reported_recv,
            )
            partners[pid] = SoALink(st, e)
            edge_ids.append(e)
            pid_ids.append(pid)
        view.partners = partners
        view.edge_ids = edge_ids
        view.pid_ids = pid_ids
        # Topology columns (e_pslot/e_pgen/e_mirror) for pre-existing
        # links are wired by adopt_restored's second pass, once every
        # endpoint has a slot; freshly admitted peers have no partners.
        view.suppliers = set(peer.suppliers)
        return view

    def release_peer(self, peer: Peer) -> None:
        """Return a departed peer's rows to the pools.

        Partners' rows *toward* the departed peer are reclaimed lazily
        when their owners clean dead partners, exactly when the object
        backend forgets the corresponding ``Link`` objects.
        """
        view = cast(SoAPeer, peer)
        st = self.state
        for link in view.partners.values():
            st.free_edge(cast(SoALink, link).e)
        st.free_peer(view.slot)

    def adopt_restored(self) -> None:
        """Re-adopt every peer after a checkpoint restore.

        ``restore_into`` refills ``self.peers`` with plain objects; this
        rebuilds the arrays in dict order (key reassignment preserves
        the order the object backend relies on) from a fresh pool, so
        row packing after resume never affects behaviour — no reduction
        in this engine depends on row order.
        """
        self.state = SoAState()
        self._isp_index = {}
        for pid in list(self.peers):
            self.peers[pid] = self.adopt_peer(self.peers[pid])
        # Second pass: every endpoint now has a slot, so wire the
        # topology columns.  Links toward peers that are gone keep the
        # allocation sentinels (-1), which can never pass the
        # generation check the fast data plane applies.
        st = self.state
        for view in self._soa_peers():
            for pid, link in view.partners.items():
                partner = self.peers.get(pid)
                if partner is None:
                    continue
                e = cast(SoALink, link).e
                pview = cast(SoAPeer, partner)
                st.e_pslot[e] = pview.slot
                st.e_pgen[e] = st.p_gen[pview.slot]
                back = pview.partners.get(view.peer_id)
                if back is not None:
                    st.e_mirror[e] = cast(SoALink, back).e

    def invalidate_channel_consts(self, channel_id: int | None = None) -> None:
        """Drop cached per-channel consts and refresh per-slot copies."""
        super().invalidate_channel_consts(channel_id)
        st = self.state
        for view in self._soa_peers():
            if channel_id is None or view.channel_id == channel_id:
                st.p_rate[view.slot] = self._consts(view.channel_id).rate_kbps

    # -- partnership management --------------------------------------------

    def connect(self, a: Peer, b: Peer, now: float) -> bool:
        """Same decision sequence as the object backend, row-backed links."""
        if a.peer_id == b.peer_id:
            return False
        if b.peer_id in a.partners:
            return False
        if self.faults.has_link_faults and self.faults.link_blocked(
            a.isp, b.isp, now
        ):
            self.obs.count("faults.link_blocked")
            return False
        limit_b = self.config.max_partners * (4 if b.is_server else 1)
        if len(b.partners) >= limit_b:
            return False
        if len(a.partners) >= self.config.max_partners:
            return False
        quality = self.latency.sample_link(
            a.isp, b.isp, a_china=a.is_china, b_china=b.is_china
        )
        neutral = min(
            self._consts(a.channel_id).neutral_hi,
            quality.throughput_kbps * 0.5,
        )
        st = self.state
        e_ab = st.alloc_edge(
            rtt_ms=quality.rtt_ms,
            cap_kbps=quality.throughput_kbps,
            est_kbps=neutral,
            established_at=now,
            partner_ip=b.ip,
        )
        e_ba = st.alloc_edge(
            rtt_ms=quality.rtt_ms,
            cap_kbps=quality.throughput_kbps,
            est_kbps=neutral,
            established_at=now,
            partner_ip=a.ip,
        )
        av = cast(SoAPeer, a)
        bv = cast(SoAPeer, b)
        st.e_mirror[e_ab] = e_ba
        st.e_mirror[e_ba] = e_ab
        st.e_pslot[e_ab] = bv.slot
        st.e_pgen[e_ab] = st.p_gen[bv.slot]
        st.e_pslot[e_ba] = av.slot
        st.e_pgen[e_ba] = st.p_gen[av.slot]
        a.partners[b.peer_id] = SoALink(st, e_ab)
        b.partners[a.peer_id] = SoALink(st, e_ba)
        av.edge_ids.append(e_ab)
        av.pid_ids.append(b.peer_id)
        bv.edge_ids.append(e_ba)
        bv.pid_ids.append(a.peer_id)
        self.obs.count("exchange.connects")
        return True

    # -- maintenance --------------------------------------------------------

    def _recover_estimates(self, peer: Peer) -> None:
        partners = peer.partners
        if not partners:
            return
        st = self.state
        cap06 = self._consts(peer.channel_id).cap06
        edges = np.fromiter(
            (cast(SoALink, link).e for link in partners.values()),
            dtype=np.int64,
            count=len(partners),
        )
        cap = st.e_cap[edges]
        est = st.e_est[edges]
        # Same expressions as the object backend, applied element-wise.
        target = np.minimum(cap06, 0.7 * cap)
        mask = est < target
        if mask.any():
            idx = edges[mask]
            st.e_est[idx] = est[mask] + 0.2 * (target[mask] - est[mask])

    def _prune_idle_partners(self, peer: Peer, now: float) -> None:
        idle_timeout = 1.5 * self.config.report_interval_s
        estab = self.state.e_estab
        suppliers = peer.suppliers
        victims = [
            pid
            for pid, link in peer.partners.items()
            if pid not in suppliers
            and now - estab[cast(SoALink, link).e] > idle_timeout
        ]
        for pid in victims:
            self.disconnect(peer, pid)

    # -- exchange round ------------------------------------------------------

    def run_round(self, now: float, duration: float) -> RoundStats:
        if self.numerics == "exact":
            return self._run_round_exact(now, duration)
        return self._run_round_fast(now, duration)

    def _run_round_exact(self, now: float, duration: float) -> RoundStats:
        """Vectorised round, bit-identical to the object backend.

        Scoring/ordering run as one flat array pass; the greedy fill
        and the per-supplier allocation keep plain-Python float
        accumulation in exactly the object backend's evaluation order,
        because vectorised (pairwise) float reductions would diverge in
        the last bits.  Viewer accounting re-joins the array world.
        """
        cfg = self.config
        stats = RoundStats(time=now)
        self.clock = now
        st = self.state
        peers = self.peers
        blind = self.partner_policy.blind_requests
        link_faults = self.faults.has_link_faults
        min_useful = cfg.min_useful_link_kbps

        # Pass 1a: gather one flat row per live (viewer, supplier) link.
        viewers: list[SoAPeer] = []
        v_caps: list[float] = []
        v_demands: list[float] = []
        f_viewer: list[int] = []
        f_edge: list[int] = []
        f_pid: list[int] = []
        blind_prio: list[float] = []
        for peer in self._soa_peers():
            if peer.is_server:
                continue
            consts = self._consts(peer.channel_id)
            vi = len(viewers)
            viewers.append(peer)
            v_caps.append(consts.request_cap)
            v_demands.append(consts.demand)
            if not peer.suppliers:
                continue
            dead: list[int] = []
            partners_get = peer.partners.get
            for pid in peer.suppliers:
                link = partners_get(pid)
                if link is None or pid not in peers:
                    dead.append(pid)
                    continue
                if link_faults and self.faults.link_blocked(
                    peer.isp, peers[pid].isp, now
                ):
                    continue  # partitioned away this round; keep the link
                f_viewer.append(vi)
                f_edge.append(cast(SoALink, link).e)
                f_pid.append(pid)
                if blind:
                    blind_prio.append(
                        float(hash((peer.peer_id, pid)) % 1_000_003)
                    )
            for pid in dead:
                peer.suppliers.discard(pid)

        # Pass 1b: order all requests by (viewer, -priority, pid) — the
        # stable concatenation of the object backend's per-viewer sorts.
        n = len(f_edge)
        requests: dict[int, list[tuple[int, int, float]]] = {}
        if n:
            edge_arr = np.array(f_edge, dtype=np.int64)
            if blind:
                prio = np.array(blind_prio)
            else:
                prio = st.e_est[edge_arr] / st.e_penalty[edge_arr]
            pid_arr = np.array(f_pid, dtype=np.int64)
            order = np.lexsort(
                (pid_arr, -prio, np.array(f_viewer, dtype=np.int64))
            )
            s_viewer = [f_viewer[i] for i in order.tolist()]
            s_pid = pid_arr[order].tolist()
            s_edge = edge_arr[order].tolist()
            s_est = st.e_est[edge_arr][order].tolist()
            s_linkcap = st.e_cap[edge_arr][order].tolist()
            # Pass 1c: greedy demand fill (plain floats, object order).
            current = -1
            remaining = 0.0
            cap = 0.0
            for k in range(n):
                vi = s_viewer[k]
                if vi != current:
                    current = vi
                    remaining = v_demands[vi]
                    cap = v_caps[vi]
                elif remaining <= 0.0:
                    continue
                link_cap = s_linkcap[k]
                req = min(cap, link_cap, remaining)
                if req <= 0.0:
                    continue
                requests.setdefault(s_pid[k], []).append((vi, s_edge[k], req))
                est = s_est[k]
                budget = est if est > min_useful else min_useful
                remaining -= req if req < budget else budget

        # Pass 2: suppliers allocate capacity, preferring mutual
        # exchangers.  Accumulation stays in plain Python floats in the
        # object backend's exact order; edge/slot effects are batched.
        bonus1 = 1.0 + cfg.reciprocation_bonus
        received: dict[int, float] = {}
        degraded = self.faults.has_link_faults and bool(self.faults.degradations)
        smoothing = cfg.estimate_smoothing
        segment_seconds = cfg.segment_seconds
        t_edges: list[int] = []  # requester-side rows that moved data
        t_rates: list[float] = []
        t_segs: list[float] = []
        t_sup_edges: list[int] = []  # supplier-side rows
        t_sup_segs: list[float] = []
        sup_slots: list[int] = []
        sup_sent: list[float] = []
        for supplier_id, reqs in requests.items():
            supplier = peers.get(supplier_id)
            if supplier is None:
                continue
            supplier_suppliers = supplier.suppliers
            weights: list[float] = []
            for vi, _, req in reqs:
                weights.append(
                    req * bonus1
                    if viewers[vi].peer_id in supplier_suppliers
                    else req
                )
            total_weighted = sum(weights)
            total_requested = sum(req for _, _, req in reqs)
            if supplier.is_server:
                capacity = (
                    supplier.upload_kbps
                    * self._content_factor(supplier)
                    * self.faults.server_capacity(now)
                )
            else:
                capacity = supplier.upload_kbps * self._content_factor(supplier)
            sent_total = 0.0
            if total_requested <= capacity:
                scale = 1.0
            else:
                scale = capacity / total_weighted if total_weighted else 0.0
            supplier_partners_get = supplier.partners.get
            for (vi, e, req), weight in zip(reqs, weights):
                achieved = req if total_requested <= capacity else min(
                    req, weight * scale
                )
                requester = viewers[vi]
                if degraded:
                    achieved *= self.faults.link_factor(
                        supplier.isp, requester.isp, now
                    )
                if achieved <= 0.0:
                    continue
                # _record_transfer, batched: same expressions/grouping.
                stream_rate = self._consts(requester.channel_id).rate_kbps
                segment_kbit = stream_rate * segment_seconds
                segments = achieved * duration / segment_kbit
                t_edges.append(e)
                t_rates.append(achieved)
                t_segs.append(segments)
                supplier_link = supplier_partners_get(requester.peer_id)
                if supplier_link is not None:
                    t_sup_edges.append(cast(SoALink, supplier_link).e)
                    t_sup_segs.append(segments)
                stats.transfers += 1
                sent_total += achieved
                received[requester.peer_id] = (
                    received.get(requester.peer_id, 0.0) + achieved
                )
            sup_slots.append(cast(SoAPeer, supplier).slot)
            sup_sent.append(sent_total)

        # Batched edge effects.  Requester-side rows are unique (one
        # request per supplier link), supplier-side rows are unique per
        # (supplier, requester) pair, so fancy-index updates are exact.
        if t_edges:
            te = np.array(t_edges, dtype=np.int64)
            rates = np.array(t_rates)
            segs = np.array(t_segs)
            st.e_recv[te] += segs
            st.e_est[te] = (1.0 - smoothing) * st.e_est[te] + smoothing * rates
            st.e_estab[te] = now
        if t_sup_edges:
            tse = np.array(t_sup_edges, dtype=np.int64)
            st.e_sent[tse] += np.array(t_sup_segs)
            st.e_estab[tse] = now
        # Suppliers with no requests this round sent nothing; requested
        # suppliers then get their exact Python-accumulated totals.
        st.p_sent[st.live_slots()] = 0.0
        if sup_slots:
            st.p_sent[np.array(sup_slots, dtype=np.int64)] = np.array(sup_sent)

        # Pass 3: viewer accounting, vectorised (same element-wise
        # expressions as the object backend; stats sums stay Python).
        if viewers:
            v_slots = np.fromiter(
                (v.slot for v in viewers), dtype=np.int64, count=len(viewers)
            )
            received_get = received.get
            got_list = [received_get(v.peer_id, 0.0) for v in viewers]
            got = np.array(got_list)
            rate = st.p_rate[v_slots]
            st.p_recv[v_slots] = got
            ratio = np.zeros(len(viewers))
            np.divide(got, rate, out=ratio, where=rate != 0.0)  # repro: noqa[REP004] mirrors the object backend's exact `if rate` zero test
            np.minimum(ratio, 1.0, out=ratio)
            hs = cfg.health_smoothing
            health = (1.0 - hs) * st.p_health[v_slots] + hs * ratio
            st.p_health[v_slots] = health
            window_s = 120.0 * cfg.segment_seconds
            buffer_fill = st.p_buffer[v_slots] + (got - rate) * duration / (
                rate * window_s
            )
            st.p_buffer[v_slots] = np.minimum(1.0, np.maximum(0.0, buffer_fill))
            st.p_playback[v_slots] += int(duration / cfg.segment_seconds)
            for peer in viewers:
                self._update_depth(peer)
            stats.viewers = len(viewers)
            total = 0.0
            for g in got_list:
                total += g
            stats.total_received_kbps = total
            satisfied_mask = got >= 0.9 * rate
            stats.satisfied = int(np.count_nonzero(satisfied_mask))
            # dict.fromkeys preserves first-seen order, matching the
            # object backend's per-viewer insertion order exactly.
            channels = st.p_channel[v_slots]
            for ch in dict.fromkeys(channels.tolist()):
                stats.per_channel_viewers[ch] = int(
                    np.count_nonzero(channels == ch)
                )
            sat_channels = channels[satisfied_mask]
            for ch in dict.fromkeys(sat_channels.tolist()):
                stats.per_channel_satisfied[ch] = int(
                    np.count_nonzero(sat_channels == ch)
                )
        return stats

    def _fault_table(
        self, now: float, fn: Callable[[str, str, float], Any], dtype: type
    ) -> Any:
        """Dense (from-ISP, to-ISP) table of a per-pair fault predicate."""
        names = list(self._isp_index)
        n = len(names)
        table = np.zeros((n, n), dtype=dtype)
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                table[i, j] = fn(a, b, now)
        return table

    def _run_round_fast(self, now: float, duration: float) -> RoundStats:
        """Fully vectorised round (renegotiated float contract).

        Same requests, same transfers, same RNG draw sequence as the
        exact mode, but float accumulation is pairwise (NumPy) instead
        of sequential, per-pair fault predicates are evaluated once per
        ISP pair instead of once per link, and depth propagation reads
        the pre-round depth column.  DESIGN §12 documents the contract
        bump; the ``soa`` golden fingerprint pins the result.
        """
        cfg = self.config
        stats = RoundStats(time=now)
        self.clock = now
        st = self.state
        blind = self.partner_policy.blind_requests
        faults = self.faults
        link_faults = faults.has_link_faults

        # Pass 1a: flat gather of every (viewer, partner) edge row via
        # the per-peer parallel lists (C-speed list.extend).
        viewers: list[SoAPeer] = []
        counts: list[int] = []
        flat_e: list[int] = []
        flat_p: list[int] = []
        v_caps: list[float] = []
        v_demands: list[float] = []
        for peer in self._soa_peers():
            if peer.is_server:
                continue
            consts = self._consts(peer.channel_id)
            viewers.append(peer)
            v_caps.append(consts.request_cap)
            v_demands.append(consts.demand)
            flat_e.extend(peer.edge_ids)
            flat_p.extend(peer.pid_ids)
            counts.append(len(peer.edge_ids))
        nv = len(viewers)
        stats.viewers = nv
        if not nv:
            return stats
        v_slots = np.fromiter((v.slot for v in viewers), dtype=np.int64, count=nv)

        edge = np.array(flat_e, dtype=np.int64)
        pid = np.array(flat_p, dtype=np.int64)
        vid = np.repeat(np.arange(nv, dtype=np.int64), counts)
        sup = st.e_sup[edge]
        pslot = st.e_pslot[edge]
        # A row's partner is live iff its slot is occupied by the same
        # tenant the edge was wired to (generation match).
        live = st.p_alive[pslot] & (st.e_pgen[edge] == st.p_gen[pslot])
        sup_live = sup & live
        dead_sup = sup & ~live
        if dead_sup.any():
            # Same supplier-set cleanup the object backend performs.
            for i in np.flatnonzero(dead_sup).tolist():
                viewers[int(vid[i])].suppliers.discard(int(pid[i]))

        rows = sup_live
        vi_isp = st.p_isp[v_slots]
        if link_faults and rows.any():
            blocked = self._fault_table(now, faults.link_blocked, np.bool_)
            rows = sup_live & ~blocked[vi_isp[vid], st.p_isp[pslot]]

        # Pass 1b+1c: order requests by (viewer, -priority, pid) and run
        # the greedy demand fill as a prefix-sum.  The per-row demand
        # decrement min(capped, budget) can exceed the object backend's
        # min(request, budget) only on a viewer's final admitted row,
        # where both leave no demand — so the admitted requests match.
        received = np.zeros(nv)
        t_pid: Any = None
        if rows.any():
            r_idx = np.flatnonzero(rows)
            r_edge = edge[r_idx]
            r_pid = pid[r_idx]
            r_vid = vid[r_idx]
            if blind:
                prio = np.array(
                    [
                        float(hash((viewers[v].peer_id, p)) % 1_000_003)
                        for v, p in zip(r_vid.tolist(), r_pid.tolist())
                    ]
                )
            else:
                prio = st.e_est[r_edge] / st.e_penalty[r_edge]
            order = np.lexsort((r_pid, -prio, r_vid))
            s_edge = r_edge[order]
            s_pid = r_pid[order]
            s_vid = r_vid[order]
            capped = np.minimum(np.array(v_caps)[s_vid], st.e_cap[s_edge])
            budget = np.maximum(st.e_est[s_edge], cfg.min_useful_link_kbps)
            dec = np.minimum(capped, budget)
            cum = np.cumsum(dec)
            seg_first = np.flatnonzero(np.diff(s_vid, prepend=-1))
            seg_sizes = np.diff(np.append(seg_first, s_vid.size))
            prev = cum - dec
            prefix = prev - np.repeat(prev[seg_first], seg_sizes)
            remaining = np.array(v_demands)[s_vid] - prefix
            req = np.minimum(capped, remaining)
            take = req > 0.0

            if take.any():
                # Pass 2: segment rows by supplier (stable keeps the
                # object backend's per-supplier request order) and
                # allocate capacity, preferring mutual exchangers.
                t_edge = s_edge[take]
                t_pid = s_pid[take]
                t_vid = s_vid[take]
                t_req = req[take]
                o2 = np.argsort(t_pid, kind="stable")
                t_edge = t_edge[o2]
                t_pid = t_pid[o2]
                t_vid = t_vid[o2]
                t_req = t_req[o2]
                mirror = st.e_mirror[t_edge]
                mutual = st.e_sup[mirror]
                weight = np.where(
                    mutual, t_req * (1.0 + cfg.reciprocation_bonus), t_req
                )
                starts = np.flatnonzero(np.diff(t_pid, prepend=-1))
                seg_counts = np.diff(np.append(starts, t_pid.size))
                total_w = np.add.reduceat(weight, starts)
                total_req = np.add.reduceat(t_req, starts)
                s_slot = st.e_pslot[t_edge[starts]]
                content = np.where(
                    st.p_server[s_slot],
                    faults.server_capacity(now),
                    0.30 + 0.70 * st.p_health[s_slot],
                )
                capacity = st.p_up[s_slot] * content
                fits = total_req <= capacity
                scale = np.where(
                    fits,
                    1.0,
                    np.divide(
                        capacity,
                        total_w,
                        out=np.zeros_like(total_w),
                        where=total_w > 0.0,
                    ),
                )
                fits_row = np.repeat(fits, seg_counts)
                ach = np.where(
                    fits_row,
                    t_req,
                    np.minimum(t_req, weight * np.repeat(scale, seg_counts)),
                )
                if link_faults and faults.degradations:
                    factor = self._fault_table(now, faults.link_factor, np.float64)
                    ach = ach * factor[st.p_isp[s_slot].repeat(seg_counts), vi_isp[t_vid]]
                pos = ach > 0.0
                stats.transfers = int(np.count_nonzero(pos))

                # Batched transfer effects (requester rows and mirror
                # rows are each unique per round, so scatters are exact).
                segments = ach * duration / (
                    st.p_rate[v_slots][t_vid] * cfg.segment_seconds
                )
                pe = t_edge[pos]
                smoothing = cfg.estimate_smoothing
                st.e_recv[pe] += segments[pos]
                st.e_est[pe] = (1.0 - smoothing) * st.e_est[pe] + smoothing * ach[pos]
                st.e_estab[pe] = now
                me = mirror[pos]
                st.e_sent[me] += segments[pos]
                st.e_estab[me] = now
                received = np.bincount(t_vid[pos], weights=ach[pos], minlength=nv)
                sent_per_sup = np.add.reduceat(ach, starts)
                st.p_sent[st.live_slots()] = 0.0
                st.p_sent[s_slot] = sent_per_sup
        if t_pid is None:
            st.p_sent[st.live_slots()] = 0.0

        # Pass 3: viewer accounting (same element-wise expressions as
        # the exact mode; sums are pairwise).
        got = received
        rate = st.p_rate[v_slots]
        st.p_recv[v_slots] = got
        ratio = np.zeros(nv)
        np.divide(got, rate, out=ratio, where=rate != 0.0)  # repro: noqa[REP004] mirrors the object backend's exact `if rate` zero test
        np.minimum(ratio, 1.0, out=ratio)
        hs = cfg.health_smoothing
        st.p_health[v_slots] = (1.0 - hs) * st.p_health[v_slots] + hs * ratio
        window_s = 120.0 * cfg.segment_seconds
        buffer_fill = st.p_buffer[v_slots] + (got - rate) * duration / (
            rate * window_s
        )
        st.p_buffer[v_slots] = np.minimum(1.0, np.maximum(0.0, buffer_fill))
        st.p_playback[v_slots] += int(duration / cfg.segment_seconds)

        # Depth: segmented minimum over the pre-round depth column.
        # Membership matches _update_depth (live suppliers, including
        # fault-blocked ones); reading the pre-round snapshot instead of
        # sequentially-updated values is part of the contract bump.
        depth_new = np.full(nv, 64, dtype=np.int64)
        if sup_live.any():
            m_idx = np.flatnonzero(sup_live)
            m_vid = vid[m_idx]
            m_depth = st.p_depth[pslot[m_idx]]
            uniq, first = np.unique(m_vid, return_index=True)
            best = np.minimum.reduceat(m_depth, first) + 1
            depth_new[uniq] = np.minimum(64, best)
        st.p_depth[v_slots] = depth_new

        stats.total_received_kbps = float(got.sum())
        satisfied_mask = got >= 0.9 * rate
        stats.satisfied = int(np.count_nonzero(satisfied_mask))
        channels = st.p_channel[v_slots]
        for ch in dict.fromkeys(channels.tolist()):
            stats.per_channel_viewers[ch] = int(np.count_nonzero(channels == ch))
        sat_channels = channels[satisfied_mask]
        for ch in dict.fromkeys(sat_channels.tolist()):
            stats.per_channel_satisfied[ch] = int(
                np.count_nonzero(sat_channels == ch)
            )
        return stats

    # -- reports -------------------------------------------------------------

    def emit_reports(
        self,
        cutoff: float,
        interval: float,
        receive: Callable[[PeerReport], bool],
    ) -> None:
        """Emit every due report with batched delta computation.

        Report order (peers in dict order, a peer's due reports in time
        order) and every emitted value match the object backend; peers
        more than one interval behind fall back to the sequential path.
        """
        st = self.state
        due: list[SoAPeer] = []
        for peer in self._soa_peers():
            if peer.is_server:
                continue
            if peer.next_report < cutoff:
                due.append(peer)
        if not due:
            return
        flat_edges: list[int] = []
        flat_pids: list[int] = []
        bounds = [0]
        for peer in due:
            partners = peer.partners
            # Listcomp (not genexpr) — this gather is hot.  Report order
            # must follow partners' dict order, not the swap-ordered
            # edge_ids list, so the trace stream matches the object
            # backend byte for byte.
            flat_edges += [link.e for link in partners.values()]  # type: ignore[attr-defined]
            flat_pids += list(partners.keys())
            bounds.append(len(flat_edges))
        edges = np.array(flat_edges, dtype=np.int64)
        sent_now = st.e_sent[edges]
        recv_now = st.e_recv[edges]
        # int() truncates toward zero; so does astype for these
        # non-negative deltas.
        sent_delta = (sent_now - st.e_rep_sent[edges]).astype(np.int64).tolist()
        recv_delta = (recv_now - st.e_rep_recv[edges]).astype(np.int64).tolist()
        ips = st.e_ip[edges].tolist()
        ports = (20_000 + (np.array(flat_pids, dtype=np.int64) % 40_000)).tolist()
        st.e_rep_sent[edges] = sent_now
        st.e_rep_recv[edges] = recv_now
        for i, peer in enumerate(due):
            lo, hi = bounds[i], bounds[i + 1]
            partner_records = tuple(
                [
                    PartnerRecord(
                        ip=ips[k],
                        port=ports[k],
                        sent_segments=sent_delta[k],
                        recv_segments=recv_delta[k],
                    )
                    for k in range(lo, hi)
                ]
            )
            when = peer.next_report
            receive(
                PeerReport(
                    time=when,
                    peer_ip=peer.ip,
                    channel_id=peer.channel_id,
                    buffer_fill=peer.buffer_fill,
                    playback_position=peer.playback_position,
                    download_capacity_kbps=peer.download_kbps,
                    upload_capacity_kbps=peer.upload_kbps,
                    recv_rate_kbps=peer.recv_rate_kbps,
                    sent_rate_kbps=peer.sent_rate_kbps,
                    partners=partner_records,
                )
            )
            peer.next_report = when + interval
            while peer.next_report < cutoff:
                # Catch-up reports (rare): deltas were just rolled, so
                # the sequential path emits the same zero-delta records
                # the object backend would.
                receive(build_report(peer, peer.next_report))
                peer.next_report += interval
