"""Struct-of-arrays exchange backend (``--engine soa``).

``repro.soa`` keeps per-peer and per-partner protocol state in flat
numpy arrays so the exchange data plane — request scoring, capacity
allocation, viewer accounting, report emission, estimate maintenance —
runs as vectorised passes over the whole mesh instead of per-object
Python loops.  Peers and links are exposed through array-backed view
objects that subclass the object backend's ``Peer``/``Link``, so the
``PartnerPolicy`` seam, the tracker/gossip control plane and the
checkpoint machinery run unchanged — and draw-for-draw identically —
on either backend (see DESIGN §12 for the bit-compatibility contract).
"""

from repro.soa.engine import SoAExchangeEngine
from repro.soa.incremental import IncrementalWindowMetrics, observe_incremental
from repro.soa.state import SoALink, SoAPeer, SoAState

__all__ = [
    "IncrementalWindowMetrics",
    "SoAExchangeEngine",
    "SoALink",
    "SoAPeer",
    "SoAState",
    "observe_incremental",
]
