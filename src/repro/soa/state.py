"""Flat array state and view objects for the SoA exchange backend.

Layout (one row per *directed* link endpoint, mirroring the object
backend's two ``Link`` instances per partnership; one row per peer):

========== ======= ====================================================
column     dtype   object-backend equivalent
========== ======= ====================================================
e_rtt      f64     ``Link.rtt_ms``
e_cap      f64     ``Link.cap_kbps``
e_est      f64     ``Link.est_kbps``
e_penalty  f64     ``Link.penalty``
e_sent     f64     ``Link.sent_segments``
e_recv     f64     ``Link.recv_segments``
e_rep_sent f64     ``Link.reported_sent``
e_rep_recv f64     ``Link.reported_recv``
e_estab    f64     ``Link.established_at``
e_ip       i64     ``Link.partner_ip``
e_mirror   i64     row of the partner's opposite-direction endpoint
e_pslot    i64     peer-row slot of the partner at link time
e_pgen     i64     ``p_gen`` of the partner at link time (staleness)
e_sup      bool    partner is in the owner's supplier set
p_health   f64     ``Peer.health``
p_buffer   f64     ``Peer.buffer_fill``
p_recv     f64     ``Peer.recv_rate_kbps``
p_sent     f64     ``Peer.sent_rate_kbps``
p_rate     f64     stream rate of the peer's channel (consts cache)
p_up       f64     ``Peer.upload_kbps`` (fixed per peer)
p_playback i64     ``Peer.playback_position``
p_channel  i64     ``Peer.channel_id``
p_depth    i64     ``Peer.depth``
p_isp      i64     engine-assigned ISP index (fault tables)
p_gen      i64     allocation generation (stale-row detection)
p_alive    bool    row in use
p_server   bool    ``Peer.is_server``
========== ======= ====================================================

The ``e_mirror``/``e_pslot``/``e_pgen``/``e_sup`` columns exist for the
fast (vectorised-numerics) data plane: a request row can find its
supplier-side counterpart, the supplier's peer row, and the mutuality
flag without touching a Python dict.  A partner slot is valid for a row
exactly when ``p_alive[e_pslot] and p_gen[e_pslot] == e_pgen`` — slot
reuse after a departure bumps ``p_gen``, so stale rows can never alias
a new tenant.

Rows are recycled through free lists; row *order* is never semantically
meaningful (every reduction the engine performs gathers rows through
the per-peer partner dicts, whose insertion order matches the object
backend), which is what makes a checkpoint-restored state — whose rows
are re-packed densely — continue draw-for-draw identically.

``SoAPeer``/``SoALink`` subclass the object backend's ``Peer``/``Link``
and shadow the hot fields with array-backed properties, so overlay
policies, the tracker control plane and ``build_report`` operate on
them unchanged.  Both reduce to plain ``Peer``/``Link`` instances under
pickle, keeping checkpoint payloads engine-portable.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Callable

import numpy as np
import numpy.typing as npt

from repro.simulator.peer import Link, Peer

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]


def _link_from_columns(
    values: tuple[float, float, float, float, float, float, float, float, float, int],
) -> Link:
    """Rebuild a plain :class:`Link` from pickled SoA column values."""
    link = Link.__new__(Link)
    (
        link.rtt_ms,
        link.cap_kbps,
        link.est_kbps,
        link.penalty,
        link.sent_segments,
        link.recv_segments,
        link.reported_sent,
        link.reported_recv,
        link.established_at,
        link.partner_ip,
    ) = values
    return link


def _peer_from_fields(fields: dict[str, object]) -> Peer:
    """Rebuild a plain :class:`Peer` from pickled SoA field values."""
    peer = Peer.__new__(Peer)
    for name, value in fields.items():
        setattr(peer, name, value)
    return peer


class SoAState:
    """Array pools for peers and directed link endpoints."""

    def __init__(self, *, peer_capacity: int = 256, edge_capacity: int = 2048) -> None:
        self.e_rtt: FloatArray = np.zeros(edge_capacity)
        self.e_cap: FloatArray = np.zeros(edge_capacity)
        self.e_est: FloatArray = np.zeros(edge_capacity)
        self.e_penalty: FloatArray = np.zeros(edge_capacity)
        self.e_sent: FloatArray = np.zeros(edge_capacity)
        self.e_recv: FloatArray = np.zeros(edge_capacity)
        self.e_rep_sent: FloatArray = np.zeros(edge_capacity)
        self.e_rep_recv: FloatArray = np.zeros(edge_capacity)
        self.e_estab: FloatArray = np.zeros(edge_capacity)
        self.e_ip: IntArray = np.zeros(edge_capacity, dtype=np.int64)
        self.e_mirror: IntArray = np.zeros(edge_capacity, dtype=np.int64)
        self.e_pslot: IntArray = np.zeros(edge_capacity, dtype=np.int64)
        self.e_pgen: IntArray = np.zeros(edge_capacity, dtype=np.int64)
        self.e_sup: BoolArray = np.zeros(edge_capacity, dtype=np.bool_)
        self.p_health: FloatArray = np.zeros(peer_capacity)
        self.p_buffer: FloatArray = np.zeros(peer_capacity)
        self.p_recv: FloatArray = np.zeros(peer_capacity)
        self.p_sent: FloatArray = np.zeros(peer_capacity)
        self.p_rate: FloatArray = np.zeros(peer_capacity)
        self.p_up: FloatArray = np.zeros(peer_capacity)
        self.p_playback: IntArray = np.zeros(peer_capacity, dtype=np.int64)
        self.p_channel: IntArray = np.zeros(peer_capacity, dtype=np.int64)
        self.p_depth: IntArray = np.zeros(peer_capacity, dtype=np.int64)
        self.p_isp: IntArray = np.zeros(peer_capacity, dtype=np.int64)
        self.p_gen: IntArray = np.zeros(peer_capacity, dtype=np.int64)
        self.p_alive: BoolArray = np.zeros(peer_capacity, dtype=np.bool_)
        self.p_server: BoolArray = np.zeros(peer_capacity, dtype=np.bool_)
        self._free_edges: list[int] = []
        self._next_edge = 0
        self._free_slots: list[int] = []
        self._next_slot = 0

    # -- allocation --------------------------------------------------------

    def _grow_edges(self) -> None:
        for name in (
            "e_rtt",
            "e_cap",
            "e_est",
            "e_penalty",
            "e_sent",
            "e_recv",
            "e_rep_sent",
            "e_rep_recv",
            "e_estab",
            "e_ip",
            "e_mirror",
            "e_pslot",
            "e_pgen",
            "e_sup",
        ):
            col = getattr(self, name)
            setattr(self, name, np.concatenate([col, np.zeros_like(col)]))

    def _grow_peers(self) -> None:
        for name in (
            "p_health",
            "p_buffer",
            "p_recv",
            "p_sent",
            "p_rate",
            "p_up",
            "p_playback",
            "p_channel",
            "p_depth",
            "p_isp",
            "p_gen",
            "p_alive",
            "p_server",
        ):
            col = getattr(self, name)
            setattr(self, name, np.concatenate([col, np.zeros_like(col)]))

    def alloc_edge(
        self,
        *,
        rtt_ms: float,
        cap_kbps: float,
        est_kbps: float,
        established_at: float,
        partner_ip: int,
        penalty: float | None = None,
        sent: float = 0.0,
        recv: float = 0.0,
        rep_sent: float = 0.0,
        rep_recv: float = 0.0,
    ) -> int:
        """Claim one edge row and initialise every column."""
        if self._free_edges:
            e = self._free_edges.pop()
        else:
            e = self._next_edge
            if e >= self.e_rtt.shape[0]:
                self._grow_edges()
            self._next_edge += 1
        self.e_rtt[e] = rtt_ms
        self.e_cap[e] = cap_kbps
        self.e_est[e] = est_kbps
        # Same expression (and grouping) as Link.__init__.
        self.e_penalty[e] = (
            penalty if penalty is not None else 1.0 + (rtt_ms / 60.0) ** 2
        )
        self.e_sent[e] = sent
        self.e_recv[e] = recv
        self.e_rep_sent[e] = rep_sent
        self.e_rep_recv[e] = rep_recv
        self.e_estab[e] = established_at
        self.e_ip[e] = partner_ip
        # Topology columns are reuse-hazardous: reset on every claim and
        # let the engine fill them in once both endpoints exist.
        self.e_mirror[e] = -1
        self.e_pslot[e] = -1
        self.e_pgen[e] = -1
        self.e_sup[e] = False
        return e

    def free_edge(self, e: int) -> None:
        self.e_sup[e] = False
        self._free_edges.append(e)

    def alloc_peer(self) -> int:
        """Claim one peer row (columns initialised by the adopter)."""
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = self._next_slot
            if slot >= self.p_health.shape[0]:
                self._grow_peers()
            self._next_slot += 1
        # Bump the generation so edge rows captured against the slot's
        # previous tenant (e_pgen) can never alias the new one.
        self.p_gen[slot] += 1
        return slot

    def free_peer(self, slot: int) -> None:
        self.p_alive[slot] = False
        self._free_slots.append(slot)

    def live_slots(self) -> IntArray:
        """Indices of rows currently in use."""
        bound = self.p_alive[: self._next_slot]
        return np.nonzero(bound)[0].astype(np.int64)


class SoALink(Link):
    """Array-backed view of one directed link endpoint.

    Subclasses :class:`Link` so policy protocols, ``build_report`` and
    isinstance checks hold; every ``Link`` field is shadowed by a
    property over the edge row ``e`` in ``st``.
    """

    __slots__ = ("st", "e")

    def __init__(self, st: SoAState, e: int) -> None:
        self.st = st
        self.e = e

    def __reduce__(
        self,
    ) -> tuple[
        Callable[
            [tuple[float, float, float, float, float, float, float, float, float, int]],
            Link,
        ],
        tuple[tuple[float, float, float, float, float, float, float, float, float, int]],
    ]:
        st, e = self.st, self.e
        return (
            _link_from_columns,
            (
                (
                    float(st.e_rtt[e]),
                    float(st.e_cap[e]),
                    float(st.e_est[e]),
                    float(st.e_penalty[e]),
                    float(st.e_sent[e]),
                    float(st.e_recv[e]),
                    float(st.e_rep_sent[e]),
                    float(st.e_rep_recv[e]),
                    float(st.e_estab[e]),
                    int(st.e_ip[e]),
                ),
            ),
        )

    @property  # type: ignore[override]
    def rtt_ms(self) -> float:
        return float(self.st.e_rtt[self.e])

    @rtt_ms.setter
    def rtt_ms(self, value: float) -> None:
        self.st.e_rtt[self.e] = value

    @property  # type: ignore[override]
    def cap_kbps(self) -> float:
        return float(self.st.e_cap[self.e])

    @cap_kbps.setter
    def cap_kbps(self, value: float) -> None:
        self.st.e_cap[self.e] = value

    @property  # type: ignore[override]
    def est_kbps(self) -> float:
        return float(self.st.e_est[self.e])

    @est_kbps.setter
    def est_kbps(self, value: float) -> None:
        self.st.e_est[self.e] = value

    @property  # type: ignore[override]
    def penalty(self) -> float:
        return float(self.st.e_penalty[self.e])

    @penalty.setter
    def penalty(self, value: float) -> None:
        self.st.e_penalty[self.e] = value

    @property  # type: ignore[override]
    def sent_segments(self) -> float:
        return float(self.st.e_sent[self.e])

    @sent_segments.setter
    def sent_segments(self, value: float) -> None:
        self.st.e_sent[self.e] = value

    @property  # type: ignore[override]
    def recv_segments(self) -> float:
        return float(self.st.e_recv[self.e])

    @recv_segments.setter
    def recv_segments(self, value: float) -> None:
        self.st.e_recv[self.e] = value

    @property  # type: ignore[override]
    def reported_sent(self) -> float:
        return float(self.st.e_rep_sent[self.e])

    @reported_sent.setter
    def reported_sent(self, value: float) -> None:
        self.st.e_rep_sent[self.e] = value

    @property  # type: ignore[override]
    def reported_recv(self) -> float:
        return float(self.st.e_rep_recv[self.e])

    @reported_recv.setter
    def reported_recv(self, value: float) -> None:
        self.st.e_rep_recv[self.e] = value

    @property  # type: ignore[override]
    def established_at(self) -> float:
        return float(self.st.e_estab[self.e])

    @established_at.setter
    def established_at(self, value: float) -> None:
        self.st.e_estab[self.e] = value

    @property  # type: ignore[override]
    def partner_ip(self) -> int:
        return int(self.st.e_ip[self.e])

    @partner_ip.setter
    def partner_ip(self, value: int) -> None:
        self.st.e_ip[self.e] = value

    def observe_throughput(self, achieved_kbps: float, smoothing: float) -> None:
        st, e = self.st, self.e
        # Same expression (and grouping) as Link.observe_throughput.
        st.e_est[e] = (1.0 - smoothing) * float(st.e_est[e]) + smoothing * achieved_kbps

    def unreported_deltas(self) -> tuple[float, float]:
        st, e = self.st, self.e
        return (
            float(st.e_sent[e]) - float(st.e_rep_sent[e]),
            float(st.e_recv[e]) - float(st.e_rep_recv[e]),
        )

    def mark_reported(self) -> None:
        st, e = self.st, self.e
        st.e_rep_sent[e] = st.e_sent[e]
        st.e_rep_recv[e] = st.e_recv[e]


class SupplierSet(set[int]):
    """A peer's supplier set that mirrors membership into ``e_sup``.

    Overlay policies treat ``peer.suppliers`` as a plain ``set`` (rebind,
    ``add``, ``discard``); this subclass intercepts the mutators so the
    ``e_sup`` flag on the owner's edge row tracks membership exactly,
    letting the fast data plane read supplier membership and mutuality
    (``e_sup[e_mirror[e]]``) straight from the arrays.  Membership flags
    for partners that have already been dropped from ``partners`` are a
    no-op here — ``free_edge`` clears the flag on the way out.  Pickles
    as a plain ``set``.
    """

    __slots__ = ("peer",)

    def __init__(self, peer: SoAPeer, members: Iterable[int] = ()) -> None:
        super().__init__(members)
        self.peer = peer
        for pid in self:
            self._flag(pid, True)

    def __reduce__(self) -> tuple[type[set[int]], tuple[list[int]]]:
        return (set, (list(self),))

    def _flag(self, pid: int, value: bool) -> None:
        link = self.peer.partners.get(pid)
        if link is not None:
            self.peer.st.e_sup[link.e] = value  # type: ignore[attr-defined]

    def add(self, pid: int) -> None:
        super().add(pid)
        self._flag(pid, True)

    def discard(self, pid: int) -> None:
        super().discard(pid)
        self._flag(pid, False)

    def remove(self, pid: int) -> None:
        super().remove(pid)
        self._flag(pid, False)

    def update(self, *others: Iterable[int]) -> None:
        for other in others:
            for pid in other:
                self.add(pid)

    def difference_update(self, *others: Iterable[int]) -> None:
        for other in others:
            for pid in list(other):
                self.discard(pid)

    def clear(self) -> None:
        for pid in list(self):
            self._flag(pid, False)
        super().clear()


#: Peer fields that stay plain Python attributes on the view (cold in
#: the data plane, or read by sequential control-plane code that would
#: pay property overhead for no vectorisation win).
_PLAIN_PEER_FIELDS = (
    "peer_id",
    "ip",
    "isp",
    "is_china",
    "is_server",
    "channel_id",
    "upload_kbps",
    "download_kbps",
    "class_name",
    "join_time",
    "depart_time",
    "last_tick",
    "next_report",
    "volunteered",
    "starving_ticks",
    "registered",
    "tracker_failures",
    "next_tracker_retry",
)


class SoAPeer(Peer):
    """Array-backed view of one peer row.

    Hot per-round fields (health, buffer, rates, playback, depth) live
    in the slot arrays; everything else stays a plain attribute.
    ``partners`` maps pid -> :class:`SoALink` in the same insertion
    order the object backend maintains, ``suppliers`` is a
    :class:`SupplierSet` (set-compatible, mirrors into ``e_sup``), and
    ``edge_ids``/``pid_ids`` are parallel lists over ``partners`` that
    let the fast data plane gather a peer's edge rows with one
    ``list.extend`` instead of a per-link Python loop.
    """

    __slots__ = ("st", "slot", "edge_ids", "pid_ids", "_suppliers")

    st: SoAState
    slot: int
    edge_ids: list[int]
    pid_ids: list[int]
    _suppliers: SupplierSet

    def __init__(self) -> None:  # pragma: no cover - views are built via adopt
        raise TypeError("SoAPeer views are created by SoAExchangeEngine.adopt_peer")

    def __reduce__(
        self,
    ) -> tuple[Callable[[dict[str, object]], Peer], tuple[dict[str, object]]]:
        fields: dict[str, object] = {
            name: getattr(self, name) for name in _PLAIN_PEER_FIELDS
        }
        fields["partners"] = dict(self.partners)
        fields["suppliers"] = set(self.suppliers)
        fields["health"] = self.health
        fields["buffer_fill"] = self.buffer_fill
        fields["recv_rate_kbps"] = self.recv_rate_kbps
        fields["sent_rate_kbps"] = self.sent_rate_kbps
        fields["playback_position"] = self.playback_position
        fields["depth"] = self.depth
        return (_peer_from_fields, (fields,))

    @property  # type: ignore[override]
    def suppliers(self) -> set[int]:
        return self._suppliers

    @suppliers.setter
    def suppliers(self, value: set[int]) -> None:
        # Policies rebind `peer.suppliers = chosen` with a plain set; wrap
        # it so mutators keep e_sup in sync.  Clearing every edge flag
        # first (rather than just the old members') also repairs any flag
        # the old set no longer covers, and is safe under self-assignment.
        st = self.st
        for link in self.partners.values():
            st.e_sup[link.e] = False  # type: ignore[attr-defined]
        self._suppliers = SupplierSet(self, value)

    @property  # type: ignore[override]
    def health(self) -> float:
        return float(self.st.p_health[self.slot])

    @health.setter
    def health(self, value: float) -> None:
        self.st.p_health[self.slot] = value

    @property  # type: ignore[override]
    def buffer_fill(self) -> float:
        return float(self.st.p_buffer[self.slot])

    @buffer_fill.setter
    def buffer_fill(self, value: float) -> None:
        self.st.p_buffer[self.slot] = value

    @property  # type: ignore[override]
    def recv_rate_kbps(self) -> float:
        return float(self.st.p_recv[self.slot])

    @recv_rate_kbps.setter
    def recv_rate_kbps(self, value: float) -> None:
        self.st.p_recv[self.slot] = value

    @property  # type: ignore[override]
    def sent_rate_kbps(self) -> float:
        return float(self.st.p_sent[self.slot])

    @sent_rate_kbps.setter
    def sent_rate_kbps(self, value: float) -> None:
        self.st.p_sent[self.slot] = value

    @property  # type: ignore[override]
    def playback_position(self) -> int:
        return int(self.st.p_playback[self.slot])

    @playback_position.setter
    def playback_position(self, value: int) -> None:
        self.st.p_playback[self.slot] = value

    @property  # type: ignore[override]
    def depth(self) -> int:
        return int(self.st.p_depth[self.slot])

    @depth.setter
    def depth(self, value: int) -> None:
        self.st.p_depth[self.slot] = value

    def add_partner(self, partner_id: int, link: Link) -> bool:
        """Record a partnership, keeping the flat gather lists in sync."""
        added = super().add_partner(partner_id, link)
        if added:
            self.edge_ids.append(link.e)  # type: ignore[attr-defined]
            self.pid_ids.append(partner_id)
        return added

    def remove_partner(self, partner_id: int) -> None:
        """Forget a partner, returning its edge row to the pool."""
        link = self.partners.pop(partner_id, None)
        self.suppliers.discard(partner_id)
        if link is not None:
            e: int = link.e  # type: ignore[attr-defined]
            # Swap-remove from the parallel gather lists (row order is
            # never semantically meaningful).
            i = self.edge_ids.index(e)
            last = len(self.edge_ids) - 1
            self.edge_ids[i] = self.edge_ids[last]
            self.pid_ids[i] = self.pid_ids[last]
            del self.edge_ids[last]
            del self.pid_ids[last]
            self.st.free_edge(e)
