"""IPv4 arithmetic, CIDR blocks and address allocation.

Peers are identified in traces by IPv4 addresses (stored as integers for
compactness); these helpers provide conversion, block membership and a
collision-free per-block allocator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


def parse_ip(text: str) -> int:
    """Dotted-quad string -> 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """32-bit integer -> dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class CidrBlock:
    """A CIDR range ``base/prefix`` of IPv4 addresses."""

    base: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"prefix out of range: {self.prefix}")
        if self.base & (self.size - 1):
            raise ValueError(
                f"base {format_ip(self.base)} not aligned to /{self.prefix}"
            )

    @classmethod
    def parse(cls, text: str) -> CidrBlock:
        """Parse ``'a.b.c.d/p'`` notation."""
        addr, _, prefix = text.partition("/")
        return cls(parse_ip(addr), int(prefix))

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix)

    @property
    def last(self) -> int:
        """Highest address in the block."""
        return self.base + self.size - 1

    def __contains__(self, address: int) -> bool:
        return self.base <= address <= self.last

    def address(self, index: int) -> int:
        """The ``index``-th address in the block."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside /{self.prefix} block")
        return self.base + index

    def __str__(self) -> str:
        return f"{format_ip(self.base)}/{self.prefix}"


class IpAllocator:
    """Hands out distinct addresses from a set of CIDR blocks.

    Allocation order is a seeded pseudo-random permutation via a stride
    coprime with the pool size, so consecutive peers do not get adjacent
    addresses (which would make intra-ISP structure an artifact of
    allocation order).  Addresses may be released for reuse.
    """

    def __init__(self, blocks: list[CidrBlock], *, seed: int = 0) -> None:
        if not blocks:
            raise ValueError("at least one block required")
        self._blocks = list(blocks)
        self._total = sum(b.size for b in self._blocks)
        rng = random.Random(seed)
        self._stride = self._pick_stride(rng)
        self._cursor = rng.randrange(self._total)
        self._in_use: set[int] = set()
        self._released: list[int] = []

    def _pick_stride(self, rng: random.Random) -> int:
        import math

        while True:
            stride = rng.randrange(1, self._total)
            if math.gcd(stride, self._total) == 1:
                return stride

    def _flat_to_address(self, flat: int) -> int:
        for block in self._blocks:
            if flat < block.size:
                return block.address(flat)
            flat -= block.size
        raise AssertionError("flat index exceeded pool size")

    @property
    def capacity(self) -> int:
        """Total addresses across all blocks."""
        return self._total

    @property
    def in_use(self) -> int:
        """Currently allocated address count."""
        return len(self._in_use)

    def allocate(self) -> int:
        """Return a currently unused address; raises when exhausted."""
        if self._released:
            address = self._released.pop()
            self._in_use.add(address)
            return address
        if len(self._in_use) >= self._total:
            raise RuntimeError("address pool exhausted")
        while True:
            address = self._flat_to_address(self._cursor)
            self._cursor = (self._cursor + self._stride) % self._total
            if address not in self._in_use:
                self._in_use.add(address)
                return address

    def release(self, address: int) -> None:
        """Return ``address`` to the pool; raises if it was not allocated."""
        if address not in self._in_use:
            raise KeyError(f"address not allocated: {format_ip(address)}")
        self._in_use.remove(address)
        self._released.append(address)
