"""Round-trip delay and per-connection TCP throughput model.

The paper attributes ISP-level clustering to one mechanism: connections
between peers in the same ISP have generally higher throughput and
smaller delay than those across ISPs, so they are preferentially kept
as active connections (Sec. 4.2.3).  This model supplies exactly that
asymmetry: an RTT drawn per link from an ISP-relationship tier plus
lognormal jitter, and a TCP throughput ceiling that decays with RTT
(the classic ~1/RTT throughput law for a fixed window and loss rate).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkQuality:
    """Measured quality of one TCP connection between two peers."""

    rtt_ms: float
    throughput_kbps: float  # per-connection ceiling

    def score(self) -> float:
        """Peer-selection utility: higher is better (UUSee measures both)."""
        return self.throughput_kbps / (1.0 + self.rtt_ms / 100.0)


@dataclass(frozen=True)
class LatencyTiers:
    """Median RTTs (ms) per ISP relationship tier."""

    intra_isp: float = 25.0
    inter_china: float = 95.0
    china_overseas: float = 260.0
    intra_overseas: float = 160.0


class LatencyModel:
    """Draws per-link RTT and throughput from the tier model.

    ``rtt_sigma`` is the lognormal jitter scale (in log-space); the
    throughput ceiling is ``window_kbits / rtt`` with multiplicative
    noise, floored to ``min_throughput_kbps``.
    """

    def __init__(
        self,
        *,
        tiers: LatencyTiers | None = None,
        rtt_sigma: float = 0.35,
        window_kbits: float = 16_000.0,
        min_throughput_kbps: float = 8.0,
        seed: int = 0,
    ) -> None:
        self.tiers = tiers or LatencyTiers()
        self.rtt_sigma = rtt_sigma
        self.window_kbits = window_kbits
        self.min_throughput_kbps = min_throughput_kbps
        self._rng = random.Random(seed)

    def base_rtt(self, isp_a: str, isp_b: str, *, a_china: bool, b_china: bool) -> float:
        """Median RTT for the ISP relationship between two endpoints."""
        if isp_a == isp_b:
            return self.tiers.intra_isp if a_china else self.tiers.intra_overseas
        if a_china and b_china:
            return self.tiers.inter_china
        if a_china != b_china:
            return self.tiers.china_overseas
        return self.tiers.intra_overseas

    def sample_link(
        self, isp_a: str, isp_b: str, *, a_china: bool = True, b_china: bool = True
    ) -> LinkQuality:
        """Draw one link's RTT and throughput ceiling."""
        median = self.base_rtt(isp_a, isp_b, a_china=a_china, b_china=b_china)
        rtt = median * math.exp(self._rng.gauss(0.0, self.rtt_sigma))
        throughput = self.window_kbits / rtt
        throughput *= math.exp(self._rng.gauss(0.0, 0.25))
        throughput = max(self.min_throughput_kbps, throughput)
        return LinkQuality(rtt_ms=rtt, throughput_kbps=throughput)
