"""Synthetic Internet model underneath the UUSee overlay.

The paper maps every peer IP to its ISP through a proprietary range
database supplied by UUSee Inc., and attributes intra-ISP clustering to
intra-ISP connections having higher throughput and lower delay.  This
subpackage reproduces both ingredients synthetically:

- an IPv4 address plan that partitions public-style address space into
  per-ISP CIDR blocks sized to the Fig. 2 market shares;
- :class:`IspDatabase`, a sorted-range lookup exactly like the paper's
  mapping database;
- a latency/throughput model in which link quality depends on whether
  the two endpoints share an ISP (and whether either is overseas);
- the access-bandwidth mix (ADSL/cable majority, as the paper notes).
"""

from repro.network.ip import CidrBlock, IpAllocator, format_ip, parse_ip
from repro.network.isp import (
    DEFAULT_ISPS,
    Isp,
    IspDatabase,
    build_default_database,
)
from repro.network.latency import LatencyModel, LinkQuality
from repro.network.bandwidth import (
    DEFAULT_BANDWIDTH_CLASSES,
    BandwidthClass,
    BandwidthSampler,
    PeerBandwidth,
)

__all__ = [
    "CidrBlock",
    "IpAllocator",
    "format_ip",
    "parse_ip",
    "DEFAULT_ISPS",
    "Isp",
    "IspDatabase",
    "build_default_database",
    "LatencyModel",
    "LinkQuality",
    "DEFAULT_BANDWIDTH_CLASSES",
    "BandwidthClass",
    "BandwidthSampler",
    "PeerBandwidth",
]
