"""Access-link bandwidth classes and per-peer capacity sampling.

The paper notes UUSee's users are mostly ADSL/cable-modem peers whose
upload capacity exceeds the ~400 Kbps streaming rate, with a minority
of high-capacity (ethernet/campus) peers — the heterogeneity behind the
heavy-tailed outdegree distribution of Fig. 4(C).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthClass:
    """One access technology: nominal capacities (kbps) and population weight."""

    name: str
    download_kbps: float
    upload_kbps: float
    weight: float


#: Default mix.  Weighted mean upload ~= 900 kbps, comfortably above the
#: 400 kbps stream as the paper observes, with a campus/ethernet tail.
DEFAULT_BANDWIDTH_CLASSES: tuple[BandwidthClass, ...] = (
    BandwidthClass("adsl", download_kbps=2048.0, upload_kbps=512.0, weight=0.58),
    BandwidthClass("cable", download_kbps=4096.0, upload_kbps=768.0, weight=0.24),
    BandwidthClass("ethernet", download_kbps=10_000.0, upload_kbps=2048.0, weight=0.12),
    BandwidthClass("campus", download_kbps=20_000.0, upload_kbps=8192.0, weight=0.06),
)


@dataclass(frozen=True)
class PeerBandwidth:
    """One peer's drawn capacities."""

    class_name: str
    download_kbps: float
    upload_kbps: float


class BandwidthSampler:
    """Seeded sampler: pick a class by weight, jitter capacities ~±20%."""

    def __init__(
        self,
        classes: tuple[BandwidthClass, ...] = DEFAULT_BANDWIDTH_CLASSES,
        *,
        jitter_sigma: float = 0.18,
        seed: int = 0,
    ) -> None:
        if not classes:
            raise ValueError("at least one bandwidth class required")
        total = sum(c.weight for c in classes)
        if total <= 0:
            raise ValueError("class weights must be positive")
        self._classes = classes
        self._cumulative: list[float] = []
        acc = 0.0
        for c in classes:
            acc += c.weight / total
            self._cumulative.append(acc)
        self._jitter_sigma = jitter_sigma
        self._rng = random.Random(seed)

    def sample(self) -> PeerBandwidth:
        """Draw one peer's bandwidth."""
        u = self._rng.random()
        chosen = self._classes[-1]
        for c, edge in zip(self._classes, self._cumulative):
            if u <= edge:
                chosen = c
                break
        jitter = math.exp(self._rng.gauss(0.0, self._jitter_sigma))
        return PeerBandwidth(
            class_name=chosen.name,
            download_kbps=chosen.download_kbps * jitter,
            upload_kbps=chosen.upload_kbps * jitter,
        )

    def mean_upload_kbps(self) -> float:
        """Population-weighted nominal mean upload capacity."""
        total = sum(c.weight for c in self._classes)
        return sum(c.upload_kbps * c.weight for c in self._classes) / total
