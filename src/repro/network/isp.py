"""ISP registry and IP-range -> ISP mapping database.

The paper (Sec. 4.1.2) uses a database from UUSee Inc. that translates
ranges of IP addresses to ISPs: Chinese IPs map to one of the major
China ISPs, everything else to a generic overseas code.  This module
builds an equivalent synthetic database: each ISP owns many scattered
/12 CIDR blocks, apportioned to the Fig. 2 market shares, and lookups
are binary searches over the sorted range table — the same mechanics a
real mapping database needs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.network.ip import CidrBlock, IpAllocator

#: Fig. 2 market shares (averaged over the trace period).  The exact pie
#: is not tabulated in the paper; these values respect its visual rank
#: order: Telecom dominant, Netcom second, the rest minor but non-zero.
DEFAULT_SHARES: dict[str, float] = {
    "China Telecom": 0.42,
    "China Netcom": 0.24,
    "China Unicom": 0.07,
    "China Tietong": 0.05,
    "China Edu": 0.06,
    "China Others": 0.07,
    "Oversea ISPs": 0.09,
}

OVERSEAS = "Oversea ISPs"

#: Synthetic /8s carved into per-ISP /12 blocks for China ISPs.
_CHINA_SLASH8S = (58, 59, 60, 61, 110, 111, 112, 113, 114, 115, 116, 117,
                  118, 119, 120, 121, 202, 210, 211, 218, 219, 220, 221, 222)
#: Whole /8s owned by the aggregate overseas category.
_OVERSEAS_SLASH8S = (24, 66, 128, 152, 193, 195)


@dataclass(frozen=True)
class Isp:
    """One ISP (or the aggregate overseas category) in the registry."""

    name: str
    share: float
    is_china: bool
    blocks: tuple[CidrBlock, ...]

    def allocator(self, *, seed: int = 0) -> IpAllocator:
        """A fresh address allocator over this ISP's blocks."""
        return IpAllocator(list(self.blocks), seed=seed)


def _apportion_blocks(
    names: list[str], shares: list[float], num_blocks: int
) -> list[str]:
    """Assign ``num_blocks`` slots to names, interleaved, shares respected.

    Uses a running largest-deficit rule: at every step the name whose
    realised fraction lags its target share the most gets the next block.
    The result is deterministic and well-mixed (no long runs), so each
    ISP's address space is scattered across the plan as in reality.
    """
    counts = {n: 0 for n in names}
    order: list[str] = []
    for step in range(1, num_blocks + 1):
        deficits = [
            (share * step - counts[name], share, name)
            for name, share in zip(names, shares)
        ]
        deficits.sort(reverse=True)
        winner = deficits[0][2]
        counts[winner] += 1
        order.append(winner)
    return order


def build_default_registry(
    shares: dict[str, float] | None = None,
) -> tuple[Isp, ...]:
    """The default ISP registry with a synthetic address plan.

    China ISPs share the /12 blocks cut from ``_CHINA_SLASH8S``; the
    overseas category owns ``_OVERSEAS_SLASH8S`` outright.
    """
    shares = dict(DEFAULT_SHARES if shares is None else shares)
    total = sum(shares.values())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"shares must sum to 1, got {total}")
    if OVERSEAS not in shares:
        raise ValueError(f"registry requires the {OVERSEAS!r} category")

    china_names = [n for n in shares if n != OVERSEAS]
    china_total = sum(shares[n] for n in china_names)
    china_blocks: list[CidrBlock] = [
        CidrBlock((s8 << 24) | (i << 20), 12)
        for s8 in _CHINA_SLASH8S
        for i in range(16)
    ]
    assignment = _apportion_blocks(
        china_names,
        [shares[n] / china_total for n in china_names],
        len(china_blocks),
    )
    blocks_by_isp: dict[str, list[CidrBlock]] = {n: [] for n in china_names}
    for block, name in zip(china_blocks, assignment):
        blocks_by_isp[name].append(block)

    isps = [
        Isp(
            name=name,
            share=shares[name],
            is_china=True,
            blocks=tuple(blocks_by_isp[name]),
        )
        for name in china_names
    ]
    isps.append(
        Isp(
            name=OVERSEAS,
            share=shares[OVERSEAS],
            is_china=False,
            blocks=tuple(CidrBlock(s8 << 24, 8) for s8 in _OVERSEAS_SLASH8S),
        )
    )
    return tuple(isps)


DEFAULT_ISPS: tuple[Isp, ...] = build_default_registry()


class IspDatabase:
    """Sorted-range IP -> ISP lookup (the paper's 'mapping database')."""

    def __init__(self, isps: tuple[Isp, ...] | list[Isp]) -> None:
        self._isps: dict[str, Isp] = {isp.name: isp for isp in isps}
        ranges: list[tuple[int, int, str]] = []
        for isp in isps:
            for block in isp.blocks:
                ranges.append((block.base, block.last, isp.name))
        ranges.sort()
        for (_, prev_last, prev_name), (start, _, name) in zip(ranges, ranges[1:]):
            if start <= prev_last:
                raise ValueError(f"overlapping blocks: {prev_name} / {name}")
        self._starts = [r[0] for r in ranges]
        self._ranges = ranges
        # memoised lookups: analytics resolve the same addresses for
        # every observation window, and the block table never changes
        self._cache: dict[int, str | None] = {}

    @property
    def isps(self) -> tuple[Isp, ...]:
        """All ISPs in the registry."""
        return tuple(self._isps.values())

    def isp(self, name: str) -> Isp:
        """Look an ISP up by name; raises ``KeyError`` if unknown."""
        return self._isps[name]

    def lookup(self, address: int) -> str | None:
        """ISP name owning ``address``, or None if unmapped."""
        cache = self._cache
        if address in cache:
            return cache[address]
        result: str | None = None
        idx = bisect.bisect_right(self._starts, address) - 1
        if idx >= 0:
            start, last, name = self._ranges[idx]
            if start <= address <= last:
                result = name
        cache[address] = result
        return result

    def is_china(self, address: int) -> bool:
        """True when ``address`` maps to a China ISP."""
        name = self.lookup(address)
        return name is not None and self._isps[name].is_china

    def same_isp(self, a: int, b: int) -> bool:
        """True when both addresses map to the same (known) ISP."""
        isp_a = self.lookup(a)
        return isp_a is not None and isp_a == self.lookup(b)


def build_default_database() -> IspDatabase:
    """An :class:`IspDatabase` over the default registry."""
    return IspDatabase(DEFAULT_ISPS)
