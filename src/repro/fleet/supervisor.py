"""The fleet supervisor: keeps a sharded campaign alive under failure.

One :class:`FleetSupervisor` owns N worker subprocesses, one per
:class:`~repro.fleet.plan.ShardSpec`.  Its failure model (DESIGN.md
Sec. 10):

- **crash** — the worker process exits non-zero (or vanishes).  The
  shard restarts from its newest valid checkpoint after a bounded
  exponential backoff with seeded jitter (the same delay law as the
  ingest :class:`~repro.ingest.client.ReportClient`).
- **hang** — the process is alive but heartbeats stopped, or rounds
  stopped advancing past the shard's all-time high-water mark.  The
  supervisor SIGKILLs it and treats it as a crash.
- **poison** — a shard that fails more than ``max_restarts`` times
  *without making new progress* is quarantined: its worker stays down,
  the incident is recorded, and the rest of the campaign finishes.
  Progress resets the failure budget, so a shard that merely crashed
  once under chaos recovers its full allowance.
- **supervisor death** — all durable state (checkpoints, sealed
  segments, ``done.json`` markers, worker specs) lives on disk, so a
  re-run of the same fleet command resumes every shard in place.

Liveness is judged against the supervisor's own injectable clock and
the *arrival* time of worker events — never against timestamps a
(possibly lying, possibly frozen) worker produced.
"""

from __future__ import annotations

import os
import queue
import random
import signal
import subprocess
import sys
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.fleet.heartbeat import parse_event
from repro.fleet.plan import ShardSpec
from repro.fleet.worker import EXIT_INTERRUPTED, load_done
from repro.obs.clock import Clock, WallClock
from repro.obs.spans import NULL_OBSERVER, AnyObserver

#: File name of the per-shard worker spec (written next to the trace).
SPEC_NAME = "spec.json"
#: File name of the per-shard worker log (stderr + stray stdout).
WORKER_LOG_NAME = "worker.log"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Liveness thresholds and the restart/quarantine budget."""

    heartbeat_timeout_s: float = 30.0  # silence longer than this = hang
    progress_timeout_s: float = 120.0  # no new round high-water = hang
    poll_interval_s: float = 0.05
    max_restarts: int = 3  # consecutive no-progress failures allowed
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.heartbeat_timeout_s <= 0 or self.progress_timeout_s <= 0:
            raise ValueError("liveness timeouts must be positive")

    def backoff_delay(self, failures: int, rng: random.Random) -> float:
        """Delay before restart attempt number ``failures``.

        The ingest client's law: bounded exponential from the failure
        count, stretched by up to ``backoff_jitter`` of itself from a
        seeded RNG — reproducible, and desynchronised across shards.
        """
        exponential = min(
            self.backoff_base_s * (2 ** max(0, failures - 1)),
            self.backoff_cap_s,
        )
        return exponential * (1.0 + self.backoff_jitter * rng.random())


@dataclass(frozen=True)
class ShardIncident:
    """One supervisor-visible failure on one shard."""

    shard_id: int
    kind: str  # 'crash' | 'hang' | 'quarantined'
    detail: str
    failures: int  # consecutive-failure count after this incident
    at_round: int  # the shard's round high-water when it happened


@dataclass
class ShardOutcome:
    """Terminal state of one shard when the supervisor returns."""

    shard_id: int
    status: str  # 'done' | 'interrupted' | 'quarantined'
    rounds_completed: int
    restarts: int  # successful respawns performed
    incidents: list[ShardIncident] = field(default_factory=list)
    summary: dict[str, Any] | None = None  # the worker's done.json payload


class _ShardState:
    """Mutable supervisor-side bookkeeping for one shard."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self.status = "pending"  # pending/running/backoff/terminal states
        self.proc: subprocess.Popen[str] | None = None
        self.log: IO[str] | None = None
        self.high_water = 0  # all-time max completed round seen
        self.last_event_at = 0.0
        self.last_progress_at = 0.0
        self.failures = 0  # consecutive, reset by new progress
        self.restarts = 0
        self.next_restart_at = 0.0
        self.incidents: list[ShardIncident] = []
        self.summary: dict[str, Any] | None = None
        self.sigterm_sent = False

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "interrupted", "quarantined")


class FleetSupervisor:
    """Spawns, watches, restarts, quarantines and reaps shard workers."""

    def __init__(
        self,
        specs: list[ShardSpec],
        *,
        policy: SupervisorPolicy | None = None,
        seed: int = 0,
        python: str | None = None,
        clock: Clock | None = None,
        sleep: Callable[[float], None] | None = None,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if not specs:
            raise ValueError("a fleet needs at least one shard spec")
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.obs = obs
        self._python = python if python is not None else sys.executable
        self._clock: Clock = clock if clock is not None else WallClock()
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = random.Random(seed)  # backoff jitter only
        self._events: queue.Queue[tuple[int, dict[str, Any]]] = queue.Queue()
        self._states = {spec.shard_id: _ShardState(spec) for spec in specs}
        self._stop = threading.Event()

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, state: _ShardState) -> None:
        spec = state.spec
        trace_dir = Path(spec.trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        spec_path = trace_dir / SPEC_NAME
        spec_path.write_text(spec.to_json(), encoding="utf-8")
        log = open(trace_dir / WORKER_LOG_NAME, "a", encoding="utf-8")
        env = dict(os.environ)
        # The worker must import the same repro tree the supervisor runs.
        repro_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            repro_root + os.pathsep + existing if existing else repro_root
        )
        proc = subprocess.Popen(
            [self._python, "-m", "repro.fleet.worker", "--spec", str(spec_path)],
            stdout=subprocess.PIPE,
            stderr=log,
            text=True,
            env=env,
        )
        state.proc = proc
        state.log = log
        state.status = "running"
        state.sigterm_sent = False
        now = self._clock.now()
        state.last_event_at = now
        state.last_progress_at = now
        reader = threading.Thread(
            target=self._read_worker,
            args=(spec.shard_id, proc.stdout, log),
            daemon=True,
        )
        reader.start()
        self.obs.count("fleet.spawns")
        self.obs.emit(
            {"type": "fleet.spawn", "shard": spec.shard_id, "pid": proc.pid}
        )

    def _read_worker(
        self, shard_id: int, stdout: IO[str] | None, log: IO[str]
    ) -> None:
        """Pump one worker's stdout: events to the queue, noise to its log."""
        if stdout is None:
            return
        for line in stdout:
            event = parse_event(line)
            if event is not None:
                self._events.put((shard_id, event))
            else:
                try:
                    log.write(line)
                except ValueError:
                    break  # log already closed by the reaper
        stdout.close()

    def _reap(self, state: _ShardState) -> None:
        if state.proc is not None:
            state.proc.wait()
            state.proc = None
        if state.log is not None:
            state.log.close()
            state.log = None

    def _kill(self, state: _ShardState) -> None:
        if state.proc is not None and state.proc.poll() is None:
            state.proc.kill()
        self._reap(state)

    # -- failure accounting -------------------------------------------------

    def _record_failure(self, state: _ShardState, kind: str, detail: str) -> None:
        """Count one crash/hang; schedule a restart or quarantine."""
        state.failures += 1
        incident = ShardIncident(
            shard_id=state.spec.shard_id,
            kind=kind,
            detail=detail,
            failures=state.failures,
            at_round=state.high_water,
        )
        state.incidents.append(incident)
        self.obs.count("fleet.crashes" if kind == "crash" else "fleet.hangs")
        self.obs.emit(
            {
                "type": f"fleet.{kind}",
                "shard": state.spec.shard_id,
                "detail": detail,
                "failures": state.failures,
            }
        )
        if state.failures > self.policy.max_restarts:
            state.status = "quarantined"
            state.incidents.append(
                ShardIncident(
                    shard_id=state.spec.shard_id,
                    kind="quarantined",
                    detail=(
                        f"{state.failures} consecutive failures exceed the "
                        f"restart budget of {self.policy.max_restarts}"
                    ),
                    failures=state.failures,
                    at_round=state.high_water,
                )
            )
            self.obs.count("fleet.quarantines")
            self.obs.emit(
                {
                    "type": "fleet.quarantine",
                    "shard": state.spec.shard_id,
                    "failures": state.failures,
                }
            )
        else:
            delay = self.policy.backoff_delay(state.failures, self._rng)
            state.status = "backoff"
            state.next_restart_at = self._clock.now() + delay

    # -- event handling -----------------------------------------------------

    def _drain_events(self) -> None:
        now = self._clock.now()
        while True:
            try:
                shard_id, event = self._events.get_nowait()
            except queue.Empty:
                return
            state = self._states[shard_id]
            state.last_event_at = now
            kind = event.get("type")
            if kind == "heartbeat":
                round_ = int(event.get("round", 0))
                if round_ > state.high_water:
                    state.high_water = round_
                    state.last_progress_at = now
                    # New ground was covered: the shard is not poisoned,
                    # so it earns its full restart budget back.
                    state.failures = 0
            elif kind in ("done", "interrupted"):
                state.summary = event
                state.high_water = max(
                    state.high_water, int(event.get("rounds_completed", 0))
                )

    # -- the loop -----------------------------------------------------------

    def request_stop(self) -> None:
        """Ask every worker to stop gracefully (idempotent, thread-safe)."""
        self._stop.set()

    def run(self) -> dict[int, ShardOutcome]:
        """Supervise every shard to a terminal state; returns outcomes."""
        for state in self._states.values():
            if load_done(state.spec.trace_dir) is not None:
                # A previous fleet run already finished this shard;
                # resume-after-supervisor-death must not re-run it.
                state.summary = load_done(state.spec.trace_dir)
                state.status = "done"
                continue
            self._spawn(state)
        try:
            while not all(s.terminal for s in self._states.values()):
                self._drain_events()
                if self._stop.is_set():
                    self._propagate_stop()
                for state in self._states.values():
                    if state.status == "running":
                        self._check_running(state)
                    elif state.status == "backoff":
                        self._check_backoff(state)
                self._sleep(self.policy.poll_interval_s)
            self._drain_events()
        finally:
            for state in self._states.values():
                self._kill(state)
        return {
            sid: ShardOutcome(
                shard_id=sid,
                status=state.status,
                rounds_completed=(
                    int(state.summary.get("rounds_completed", 0))
                    if state.summary
                    else state.high_water
                ),
                restarts=state.restarts,
                incidents=list(state.incidents),
                summary=state.summary,
            )
            for sid, state in sorted(self._states.items())
        }

    def _propagate_stop(self) -> None:
        for state in self._states.values():
            if (
                state.status == "running"
                and not state.sigterm_sent
                and state.proc is not None
                and state.proc.poll() is None
            ):
                state.proc.send_signal(signal.SIGTERM)
                state.sigterm_sent = True
            elif state.status == "backoff":
                # Never respawn into a stopping campaign; the shard's
                # checkpoint already holds its resumable cut.
                state.status = "interrupted"

    def _check_running(self, state: _ShardState) -> None:
        proc = state.proc
        if proc is None:
            return
        returncode = proc.poll()
        if returncode is not None:
            self._drain_events()  # the exit event may still be queued
            self._reap(state)
            if returncode == 0 and load_done(state.spec.trace_dir) is not None:
                state.summary = load_done(state.spec.trace_dir)
                state.status = "done"
                self.obs.count("fleet.dones")
                self.obs.emit(
                    {"type": "fleet.done", "shard": state.spec.shard_id}
                )
            elif returncode == EXIT_INTERRUPTED and self._stop.is_set():
                state.status = "interrupted"
            else:
                self._record_failure(
                    state, "crash", f"worker exited with code {returncode}"
                )
            return
        now = self._clock.now()
        silent_for = now - state.last_event_at
        stuck_for = now - state.last_progress_at
        if (
            silent_for > self.policy.heartbeat_timeout_s
            or stuck_for > self.policy.progress_timeout_s
        ):
            self._kill(state)
            reason = (
                f"no heartbeat for {silent_for:.1f}s"
                if silent_for > self.policy.heartbeat_timeout_s
                else f"no round progress for {stuck_for:.1f}s"
            )
            self._record_failure(state, "hang", reason)

    def _check_backoff(self, state: _ShardState) -> None:
        if self._stop.is_set():
            state.status = "interrupted"
            return
        if self._clock.now() >= state.next_restart_at:
            state.restarts += 1
            self.obs.count("fleet.restarts")
            self.obs.emit(
                {
                    "type": "fleet.restart",
                    "shard": state.spec.shard_id,
                    "attempt": state.restarts,
                }
            )
            self._spawn(state)
