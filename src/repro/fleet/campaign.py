"""One-call fleet campaigns: plan, supervise, merge, account.

:func:`run_fleet_campaign` is the sharded sibling of
:func:`~repro.core.experiments.run_campaign` and the engine behind
``repro run --shards N``.  It plans the shard partition, supervises the
workers to terminal states (restarting and quarantining as needed),
merges the surviving shard traces into the campaign root, and persists
a fleet-aware ``health.json`` — including every incident, so a
quarantined shard is impossible to miss from ``repro info``.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.experiments import write_campaign_health_payload
from repro.fleet.merge import MergeResult, merge_shards
from repro.fleet.plan import ChaosSpec, IngestSpec, ShardPlan, build_plan
from repro.fleet.supervisor import (
    FleetSupervisor,
    ShardOutcome,
    SupervisorPolicy,
)
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.overlay import PolicyError, build_policy
from repro.simulator.channel import ChannelCatalogue, default_catalogue
from repro.traces.health import TraceHealth


@dataclass(frozen=True)
class FleetCampaignConfig:
    """Everything that defines a sharded campaign run."""

    campaign_dir: str | Path
    num_shards: int
    days: float = 14.0
    base_concurrency: float = 1_000.0
    seed: int = 2006
    with_flash_crowd: bool = True
    policy: str = "uusee"
    catalogue: ChannelCatalogue | None = None
    checkpoint_every_rounds: int = 36
    keep_last: int = 3
    records_per_segment: int = 100_000
    compress: bool = False
    fsync_on_flush: bool = False
    engine: str = "object"
    heartbeat_every_rounds: int = 1
    supervisor: SupervisorPolicy | None = None
    ingest: IngestSpec | None = None
    chaos: dict[int, ChaosSpec] | None = None


@dataclass
class FleetResult:
    """Outcome of a supervised sharded campaign."""

    campaign_dir: Path
    outcomes: dict[int, ShardOutcome]
    merge: MergeResult | None  # None when interrupted or shipping to ingest
    interrupted: bool

    @property
    def quarantined(self) -> list[int]:
        """Shard ids that were poisoned out of the campaign."""
        return [
            sid
            for sid, outcome in sorted(self.outcomes.items())
            if outcome.status == "quarantined"
        ]

    @property
    def completed(self) -> list[int]:
        """Shard ids that finished their full span."""
        return [
            sid
            for sid, outcome in sorted(self.outcomes.items())
            if outcome.status == "done"
        ]


def _fleet_health_payload(result: FleetResult, plan: ShardPlan) -> dict[str, Any]:
    """The campaign-root ``health.json`` payload for a fleet run."""
    health = TraceHealth()
    rounds = 0
    records = 0
    for outcome in result.outcomes.values():
        rounds = max(rounds, outcome.rounds_completed)
        if outcome.summary is not None:
            shard_health = outcome.summary.get("health")
            if isinstance(shard_health, dict):
                health.merge(TraceHealth(**shard_health))
            records += int(outcome.summary.get("trace_records", 0))
    shards = {
        str(outcome.shard_id): {
            "status": outcome.status,
            "rounds_completed": outcome.rounds_completed,
            "restarts": outcome.restarts,
            "channels": [c.channel_id for c in spec.channels],
            "rng_fingerprint": (
                outcome.summary.get("rng_fingerprint")
                if outcome.summary
                else None
            ),
        }
        for spec, outcome in zip(plan, result.outcomes.values())
    }
    incidents = [
        dataclasses.asdict(incident)
        for outcome in result.outcomes.values()
        for incident in outcome.incidents
    ]
    return {
        "rounds_completed": rounds,
        "trace_records": (
            result.merge.records if result.merge is not None else records
        ),
        "resumed_from_round": None,
        "interrupted": result.interrupted,
        "rng_fingerprint": None,
        "health": dataclasses.asdict(health),
        "fleet": {
            "num_shards": len(plan),
            "shards": shards,
            "incidents": incidents,
            "quarantined": result.quarantined,
            "merged_sha256": (
                result.merge.content_sha256 if result.merge is not None else None
            ),
        },
    }


def run_fleet_campaign(
    config: FleetCampaignConfig,
    *,
    stop: threading.Event | None = None,
    obs: AnyObserver = NULL_OBSERVER,
) -> FleetResult:
    """Run one supervised sharded campaign end to end.

    Restarts of this very function resume in place: finished shards are
    recognised by their ``done.json`` and skipped, unfinished ones
    resume from their newest valid checkpoint, and an already-valid
    merge is reused rather than recomputed.  ``stop`` (when set during
    the run) interrupts every worker gracefully; the merge is then
    deferred to the next, uninterrupted, invocation.
    """
    try:
        # Fail before any worker spawns: a bad spec would otherwise
        # crash every shard and read as a fleet-wide poison event.
        build_policy(config.policy)
    except PolicyError as exc:
        raise ValueError(f"invalid partner policy: {exc}") from exc
    campaign_dir = Path(config.campaign_dir)
    campaign_dir.mkdir(parents=True, exist_ok=True)
    catalogue = (
        config.catalogue if config.catalogue is not None else default_catalogue()
    )
    plan = build_plan(
        campaign_dir,
        num_shards=config.num_shards,
        days=config.days,
        base_concurrency=config.base_concurrency,
        seed=config.seed,
        catalogue=catalogue,
        with_flash_crowd=config.with_flash_crowd,
        policy=config.policy,
        checkpoint_every_rounds=config.checkpoint_every_rounds,
        keep_last=config.keep_last,
        records_per_segment=config.records_per_segment,
        compress=config.compress,
        fsync_on_flush=config.fsync_on_flush,
        engine=config.engine,
        heartbeat_every_rounds=config.heartbeat_every_rounds,
        ingest=config.ingest,
        chaos=config.chaos,
    )
    supervisor = FleetSupervisor(
        plan.specs,
        policy=config.supervisor,
        seed=config.seed,
        obs=obs,
    )
    watcher: threading.Thread | None = None
    if stop is not None:
        def _watch() -> None:
            stop.wait()
            supervisor.request_stop()

        watcher = threading.Thread(target=_watch, daemon=True)
        watcher.start()
    with obs.span("fleet.supervise"):
        outcomes = supervisor.run()
    if stop is not None and not stop.is_set():
        stop.set()  # release the watcher thread
    if watcher is not None:
        watcher.join(timeout=1.0)

    interrupted = any(o.status == "interrupted" for o in outcomes.values())
    merge: MergeResult | None = None
    if not interrupted and config.ingest is None:
        completed = [
            spec for spec in plan
            if outcomes[spec.shard_id].status == "done"
        ]
        if completed:
            merge = merge_shards(
                campaign_dir,
                completed,
                records_per_segment=config.records_per_segment,
                compress=config.compress,
                obs=obs,
            )
    result = FleetResult(
        campaign_dir=campaign_dir,
        outcomes=outcomes,
        merge=merge,
        interrupted=interrupted,
    )
    write_campaign_health_payload(
        campaign_dir, _fleet_health_payload(result, plan)
    )
    return result


__all__ = [
    "FleetCampaignConfig",
    "FleetResult",
    "run_fleet_campaign",
]
