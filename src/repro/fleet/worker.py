"""The shard worker subprocess (``python -m repro.fleet.worker``).

One worker owns one shard: it rebuilds its sub-catalogue from the
:class:`~repro.fleet.plan.ShardSpec` the supervisor wrote next to its
trace directory, then drives a full
:func:`~repro.core.experiments.run_campaign` over its channel subset —
per-shard segmented trace, per-shard checkpoints under the shard-scoped
``config_token``, per-shard named RNGs seeded from the derived shard
seed.

Robustness contract:

- **crash-resume** — the worker always starts in ``resume="auto"``
  mode: newest valid checkpoint if one exists, recovered-and-rewound
  trace store otherwise, fresh campaign when the directory is empty.
  A worker that has been SIGKILLed any number of times converges on
  the same trace bytes and the same final RNG states as one that ran
  straight through.
- **graceful signals** — SIGTERM/SIGINT stop the campaign at the next
  round boundary, take a final checkpoint, seal and close the store,
  and exit with :data:`EXIT_INTERRUPTED` so the supervisor knows the
  shard is resumable, not failed.
- **liveness** — a ``heartbeat`` event goes up the stdout pipe every
  ``heartbeat_every_rounds`` completed rounds; ``done`` carries the
  final summary, which is also persisted atomically as ``done.json``
  (the supervisor's restart-survivable completion marker).

The deterministic :class:`~repro.fleet.plan.ChaosSpec` harness lives
here too — it exists so the kill/restart test matrix can land a SIGKILL
at an exactly reproducible instant (mid-round, mid-checkpoint,
mid-rotation, or as a heartbeat-silent hang).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import IO, Any

from repro.core.experiments import run_campaign
from repro.fleet.heartbeat import emit_event
from repro.fleet.plan import ChaosSpec, ShardSpec
from repro.ioutil import atomic_write_bytes

#: Exit code for a graceful (checkpointed, resumable) signal stop.
EXIT_INTERRUPTED = 3
#: Completion marker written atomically into the shard's trace dir.
DONE_NAME = "done.json"
#: One-shot chaos marker: present means the damage was already done.
CHAOS_MARKER_NAME = "chaos-fired"


def _newest_checkpoint(ckpt_dir: Path) -> Path | None:
    candidates = sorted(ckpt_dir.glob("ckpt-*.bin")) if ckpt_dir.is_dir() else []
    return candidates[-1] if candidates else None


def _active_segment(trace_dir: Path) -> Path | None:
    segments = sorted(
        p for p in trace_dir.iterdir()
        if p.name.startswith("seg-") and not p.name.endswith(".quarantined")
    ) if trace_dir.is_dir() else []
    return segments[-1] if segments else None


class ChaosHarness:
    """Inflicts one :class:`ChaosSpec` at its exact round boundary."""

    def __init__(self, spec: ShardSpec, out: IO[str]) -> None:
        self.spec = spec
        self.chaos = spec.chaos
        self.trace_dir = Path(spec.trace_dir)
        self.out = out
        self.armed = self.chaos is not None and (
            not self.chaos.once
            or not (self.trace_dir / CHAOS_MARKER_NAME).exists()
        )

    def on_round(self, rounds_completed: int) -> None:
        """Fire the configured fault when its round arrives."""
        chaos = self.chaos
        if not self.armed or chaos is None or rounds_completed != chaos.at_round:
            return
        if chaos.once:
            # Marked *before* the damage: the restarted worker must run
            # clean even if the kill lands in the next microsecond.
            marker = self.trace_dir / CHAOS_MARKER_NAME
            marker.write_text(f"round {rounds_completed}\n", encoding="utf-8")
        self._inflict(chaos)

    def _inflict(self, chaos: ChaosSpec) -> None:
        if chaos.mode == "hang":
            # Stop heartbeating but stay alive: the supervisor's missed-
            # heartbeat timeout is the only thing that can save the shard.
            while True:
                time.sleep(3600.0)
        if chaos.mode == "torn-checkpoint":
            newest = _newest_checkpoint(self.trace_dir / "checkpoints")
            if newest is not None:
                blob = newest.read_bytes()
                newest.write_bytes(blob[: max(1, len(blob) // 3)])
        elif chaos.mode == "torn-segment":
            active = _active_segment(self.trace_dir)
            if active is not None:
                with open(active, "ab") as fh:
                    fh.write(b'{"t": 1e12, "ip":')  # half a record
        elif chaos.mode == "stale-manifest":
            manifest = self.trace_dir / "manifest.json"
            if manifest.exists():
                payload = json.loads(manifest.read_text(encoding="utf-8"))
                if payload.get("segments"):
                    payload["segments"] = payload["segments"][:-1]
                    manifest.write_text(json.dumps(payload), encoding="utf-8")
        # 'crash' needs no preparation.  SIGKILL: no cleanup, no flush,
        # no sealed segment — exactly what the supervisor must survive.
        os.kill(os.getpid(), signal.SIGKILL)


def run_shard(
    spec: ShardSpec,
    *,
    out: IO[str] | None = None,
    stop: threading.Event | None = None,
) -> int:
    """Run one shard campaign to completion (or graceful interruption).

    Returns the process exit code: 0 done, :data:`EXIT_INTERRUPTED`
    when a signal stopped the campaign at a checkpointed boundary.
    """
    out = out if out is not None else sys.stdout
    stop = stop if stop is not None else threading.Event()
    trace_dir = Path(spec.trace_dir)
    chaos = ChaosHarness(spec, out)

    ingest_client = None
    if spec.ingest is not None:
        from repro.ingest.client import ReportClient
        from repro.ingest.faults import DatagramFaults

        ing = spec.ingest
        ingest_client = ReportClient(
            ing.host,
            ing.tcp_port,
            udp_port=ing.udp_port,
            transport=ing.transport,
            shard_id=ing.shard_base + spec.shard_id,
            faults=(
                DatagramFaults(loss_rate=ing.loss_rate)
                if ing.loss_rate > 0.0
                else None
            ),
            seed=spec.derived_seed(),
        )

    heartbeat_every = max(1, spec.heartbeat_every_rounds)

    def on_round(rounds_completed: int) -> None:
        if rounds_completed % heartbeat_every == 0:
            emit_event(
                out,
                {
                    "type": "heartbeat",
                    "shard": spec.shard_id,
                    "round": rounds_completed,
                },
            )
        chaos.on_round(rounds_completed)

    emit_event(out, {"type": "started", "shard": spec.shard_id})
    result = run_campaign(
        trace_dir,
        days=spec.days,
        base_concurrency=spec.base_concurrency,
        seed=spec.derived_seed(),
        with_flash_crowd=spec.with_flash_crowd,
        policy=spec.policy,
        catalogue=spec.catalogue(),
        checkpoint_every_rounds=spec.checkpoint_every_rounds,
        keep_last=spec.keep_last,
        resume="auto",
        records_per_segment=spec.records_per_segment,
        compress=spec.compress,
        fsync_on_flush=spec.fsync_on_flush,
        checkpoint_scope=spec.scope_token(),
        ingest=ingest_client,
        engine=spec.engine,
        stop=stop.is_set,
        on_round=on_round,
        compute_content_sha=spec.ingest is None,
    )
    summary: dict[str, Any] = {
        "shard": spec.shard_id,
        "rounds_completed": result.rounds_completed,
        "trace_records": result.trace_records,
        "resumed_from_round": result.resumed_from_round,
        "rng_fingerprint": result.rng_fingerprint,
        "content_sha256": result.content_sha256,
        "health": dataclasses.asdict(result.health),
        "interrupted": result.interrupted,
    }
    if result.interrupted:
        emit_event(out, {"type": "interrupted", **summary})
        return EXIT_INTERRUPTED
    atomic_write_bytes(
        trace_dir / DONE_NAME,
        (json.dumps(summary, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    emit_event(out, {"type": "done", **summary})
    return 0


def load_done(trace_dir: str | Path) -> dict[str, Any] | None:
    """Read a shard's completion marker, or ``None`` when unfinished."""
    path = Path(trace_dir) / DONE_NAME
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def main(argv: list[str] | None = None) -> int:
    """Worker entry point: load the spec, wire signals, run the shard."""
    parser = argparse.ArgumentParser(prog="repro.fleet.worker")
    parser.add_argument("--spec", type=Path, required=True)
    args = parser.parse_args(argv)
    spec = ShardSpec.from_json(args.spec.read_text(encoding="utf-8"))

    stop = threading.Event()

    def _graceful(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    return run_shard(spec, stop=stop)


if __name__ == "__main__":
    raise SystemExit(main())
