"""The worker → supervisor event protocol.

Workers speak to the supervisor over the one channel that survives
every failure mode worth testing — their stdout pipe.  Each event is a
single line::

    @fleet {"type": "heartbeat", "shard": 2, "round": 36, ...}

The ``@fleet `` prefix keeps stray prints (warnings, third-party noise)
from being mistaken for protocol traffic; anything unprefixed is
forwarded to the shard's log file instead.  Event types:

- ``started`` — the worker is up (carries resume provenance);
- ``heartbeat`` — emitted every ``heartbeat_every_rounds`` completed
  rounds; the supervisor's liveness *and* progress signal;
- ``interrupted`` — a graceful SIGTERM/SIGINT stop (checkpoint taken);
- ``done`` — the shard finished (carries the final summary).

The supervisor never trusts wall-clock timestamps from the worker: it
stamps arrival times against its own injectable clock, so liveness
timeouts are exactly testable with a manual clock.
"""

from __future__ import annotations

import json
from typing import IO, Any

#: Line prefix marking supervisor-bound protocol events on worker stdout.
FLEET_PREFIX = "@fleet "


def emit_event(stream: IO[str], payload: dict[str, Any]) -> None:
    """Write one protocol event line and flush it through the pipe."""
    stream.write(FLEET_PREFIX + json.dumps(payload, sort_keys=True) + "\n")
    stream.flush()


def parse_event(line: str) -> dict[str, Any] | None:
    """Decode a protocol event line; ``None`` for non-protocol output.

    A *malformed* protocol line (prefix present, JSON broken — e.g. a
    worker killed mid-write) is also ``None``: the supervisor treats it
    as noise rather than crashing on its own telemetry.
    """
    if not line.startswith(FLEET_PREFIX):
        return None
    try:
        payload = json.loads(line[len(FLEET_PREFIX):])
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None
