"""Shard planning: deterministic channel partitioning and worker specs.

Channels are nearly independent overlays — tracker membership, partner
lists and block exchange never cross a channel boundary — so the
natural shard unit is a channel subset.  :func:`partition_channels`
balances the catalogue's popularity mass across N shards with a
deterministic greedy rule, and :func:`build_plan` turns one campaign
description into N :class:`ShardSpec` values, each carrying everything
a worker subprocess needs: its channel subset (shares renormalised to
sum to one), its population slice (``base_concurrency`` scaled by the
subset's share mass), and its own derived seed so the named-RNG
discipline stays per-shard.

A :class:`ShardSpec` serialises to JSON (the supervisor writes it next
to the shard's trace directory; the worker reads it back), and its
:meth:`ShardSpec.scope_token` feeds the shard-scoped checkpoint
``config_token`` so shard 2's checkpoint can never be restored into
shard 3's worker.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.simulator.channel import Channel, ChannelCatalogue


def shard_seed(campaign_seed: int, shard_id: int) -> int:
    """The derived RNG seed for one shard, stable across processes.

    Hash-derived rather than ``campaign_seed + shard_id`` so neighbour
    campaigns (seed 7 shard 1 vs seed 8 shard 0) never share streams.
    """
    digest = hashlib.sha256(
        f"repro.fleet:{campaign_seed}:{shard_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def partition_channels(
    catalogue: ChannelCatalogue, num_shards: int
) -> list[tuple[Channel, ...]]:
    """Split a catalogue into ``num_shards`` share-balanced subsets.

    Deterministic greedy bin packing: channels in descending share
    order (ties broken by channel id) are assigned to the currently
    lightest shard (ties broken by lowest shard index).  Every shard is
    guaranteed at least one channel, so ``num_shards`` may not exceed
    the catalogue size.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards > len(catalogue):
        raise ValueError(
            f"cannot split {len(catalogue)} channels across {num_shards} "
            "shards (each shard needs at least one channel)"
        )
    ordered = sorted(catalogue, key=lambda c: (-c.share, c.channel_id))
    loads = [0.0] * num_shards
    buckets: list[list[Channel]] = [[] for _ in range(num_shards)]
    for channel in ordered:
        # Empty shards first (everyone gets a channel), then lightest.
        target = min(
            range(num_shards),
            key=lambda i: (len(buckets[i]) > 0, loads[i], i),
        )
        buckets[target].append(channel)
        loads[target] += channel.share
    return [
        tuple(sorted(bucket, key=lambda c: c.channel_id)) for bucket in buckets
    ]


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic fault injection for the kill/restart test matrix.

    Production campaigns never set this; the chaos tests and the CI
    ``fleet-chaos`` job use it to land a crash at an exactly
    reproducible instant.  ``mode``:

    - ``crash`` — SIGKILL self right after round ``at_round``;
    - ``torn-checkpoint`` — tear the newest checkpoint file (as if the
      kill struck mid-write on a non-atomic filesystem), then SIGKILL;
    - ``torn-segment`` — append half a record to the active trace
      segment (a mid-line kill), then SIGKILL;
    - ``stale-manifest`` — regress the segment manifest to before its
      last sealing (a mid-rotation kill), then SIGKILL;
    - ``hang`` — stop heartbeating and sleep forever (the supervisor
      must detect and SIGKILL us).

    With ``once=True`` (default) the worker drops a marker file before
    inflicting the damage, so the restarted worker runs clean; with
    ``once=False`` the shard fails every time it reaches ``at_round`` —
    the poison-shard scenario.
    """

    mode: str
    at_round: int
    once: bool = True

    MODES = ("crash", "torn-checkpoint", "torn-segment", "stale-manifest", "hang")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}")
        if self.at_round < 1:
            raise ValueError("at_round must be >= 1")


@dataclass(frozen=True)
class IngestSpec:
    """Where (and how) a shard ships reports instead of writing locally."""

    host: str
    tcp_port: int
    udp_port: int
    transport: str = "tcp"
    loss_rate: float = 0.0
    #: The worker reports as ingest shard ``shard_base + shard_id`` so
    #: every worker owns its own ``(shard, seq)`` dedup stream.
    shard_base: int = 0


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker subprocess needs to run its shard."""

    shard_id: int
    num_shards: int
    seed: int  # the *campaign* seed; the worker derives shard_seed()
    channels: tuple[Channel, ...]  # this shard's subset, original shares
    base_concurrency: float  # already scaled to this shard's share mass
    days: float
    with_flash_crowd: bool = True
    policy: str = "uusee"
    trace_dir: str = ""  # the shard's own campaign directory
    checkpoint_every_rounds: int = 36
    keep_last: int = 3
    records_per_segment: int = 100_000
    compress: bool = False
    fsync_on_flush: bool = False
    engine: str = "object"
    heartbeat_every_rounds: int = 1
    ingest: IngestSpec | None = None
    chaos: ChaosSpec | None = None

    def derived_seed(self) -> int:
        """This shard's own system seed (see :func:`shard_seed`)."""
        return shard_seed(self.seed, self.shard_id)

    def catalogue(self) -> ChannelCatalogue:
        """The shard's sub-catalogue, shares renormalised to sum to 1."""
        total = sum(c.share for c in self.channels)
        if total <= 0.0:
            raise ValueError(f"shard {self.shard_id} carries zero share mass")
        return ChannelCatalogue(
            [dataclasses.replace(c, share=c.share / total) for c in self.channels]
        )

    def scope_token(self) -> str:
        """The shard-scoped checkpoint scope (feeds ``config_token``)."""
        ids = ",".join(str(c.channel_id) for c in self.channels)
        return f"fleet-shard:{self.shard_id}/{self.num_shards}:channels:{ids}"

    # -- JSON round trip ----------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON document (the on-disk worker spec)."""
        payload: dict[str, Any] = dataclasses.asdict(self)
        payload["channels"] = [dataclasses.asdict(c) for c in self.channels]
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> ShardSpec:
        """Parse a spec previously written by :meth:`to_json`."""
        payload = json.loads(text)
        channels = tuple(
            Channel(
                channel_id=int(c["channel_id"]),
                name=str(c["name"]),
                rate_kbps=float(c["rate_kbps"]),
                share=float(c["share"]),
            )
            for c in payload.pop("channels")
        )
        chaos = payload.pop("chaos", None)
        ingest = payload.pop("ingest", None)
        return cls(
            channels=channels,
            chaos=ChaosSpec(**chaos) if chaos is not None else None,
            ingest=IngestSpec(**ingest) if ingest is not None else None,
            **payload,
        )


@dataclass
class ShardPlan:
    """The full campaign's worth of shard specs, in shard-id order."""

    specs: list[ShardSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Any:
        return iter(self.specs)


def shard_dir(campaign_dir: Path, shard_id: int) -> Path:
    """The trace directory owned by one shard worker."""
    return campaign_dir / "shards" / f"shard-{shard_id:02d}"


def build_plan(
    campaign_dir: str | Path,
    *,
    num_shards: int,
    days: float,
    base_concurrency: float,
    seed: int,
    catalogue: ChannelCatalogue,
    with_flash_crowd: bool = True,
    policy: str = "uusee",
    checkpoint_every_rounds: int = 36,
    keep_last: int = 3,
    records_per_segment: int = 100_000,
    compress: bool = False,
    fsync_on_flush: bool = False,
    engine: str = "object",
    heartbeat_every_rounds: int = 1,
    ingest: IngestSpec | None = None,
    chaos: dict[int, ChaosSpec] | None = None,
) -> ShardPlan:
    """Plan one campaign across ``num_shards`` workers.

    The partition is deterministic in the catalogue and ``num_shards``
    alone; ``base_concurrency`` is split proportionally to each shard's
    share mass so the union population matches the unsharded campaign's
    target curve.
    """
    campaign_dir = Path(campaign_dir)
    subsets = partition_channels(catalogue, num_shards)
    specs: list[ShardSpec] = []
    for sid, subset in enumerate(subsets):
        mass = sum(c.share for c in subset)
        specs.append(
            ShardSpec(
                shard_id=sid,
                num_shards=num_shards,
                seed=seed,
                channels=subset,
                base_concurrency=base_concurrency * mass,
                days=days,
                with_flash_crowd=with_flash_crowd,
                policy=policy,
                trace_dir=str(shard_dir(campaign_dir, sid)),
                checkpoint_every_rounds=checkpoint_every_rounds,
                keep_last=keep_last,
                records_per_segment=records_per_segment,
                compress=compress,
                fsync_on_flush=fsync_on_flush,
                engine=engine,
                heartbeat_every_rounds=heartbeat_every_rounds,
                ingest=ingest,
                chaos=(chaos or {}).get(sid),
            )
        )
    return ShardPlan(specs=specs)
