"""Supervised sharded campaigns (DESIGN.md Sec. 10).

Magellan's two-month measurement survived client crashes and collector
hiccups because no single process owned the whole campaign.  This
package gives the reproduction the same property: a campaign's channels
are partitioned across N subprocess *shard workers* (channels are
nearly independent overlays), each running its own
:class:`~repro.simulator.system.UUSeeSystem` with its own named-RNG
discipline, per-shard segmented trace and per-shard checkpoints.  A
:class:`~repro.fleet.supervisor.FleetSupervisor` watches worker
heartbeats, restarts crashed or hung workers from their newest valid
checkpoint with bounded exponential backoff, quarantines a shard as
*poisoned* after too many consecutive failed restarts, and finally
merges the shard trace streams into one deterministic campaign trace.

The headline invariant: a campaign whose workers are being SIGKILLed
and hung finishes draw- and content-identically to one that was never
touched.
"""

from repro.fleet.campaign import FleetCampaignConfig, FleetResult, run_fleet_campaign
from repro.fleet.merge import MERGE_MANIFEST_NAME, MergeResult, merge_shards
from repro.fleet.plan import ShardPlan, ShardSpec, build_plan, partition_channels, shard_seed
from repro.fleet.supervisor import (
    FleetSupervisor,
    ShardIncident,
    ShardOutcome,
    SupervisorPolicy,
)

__all__ = [
    "FleetCampaignConfig",
    "FleetResult",
    "run_fleet_campaign",
    "MERGE_MANIFEST_NAME",
    "MergeResult",
    "merge_shards",
    "ShardPlan",
    "ShardSpec",
    "build_plan",
    "partition_channels",
    "shard_seed",
    "FleetSupervisor",
    "ShardIncident",
    "ShardOutcome",
    "SupervisorPolicy",
]
