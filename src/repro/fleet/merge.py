"""Deterministic k-way merge of shard traces into one campaign trace.

Each shard worker writes its own segmented trace under
``campaign/shards/shard-NN/``.  After the fleet finishes,
:func:`merge_shards` folds those per-shard streams into a single
:class:`~repro.traces.segments.SegmentedTraceStore` at the campaign
root, ordered by ``(report time, shard id, ordinal)`` — a total order,
so the merged byte stream is a pure function of the shard contents and
two fleets that produced identical shards produce identical campaigns
no matter how differently their workers were killed, restarted or
scheduled along the way.

The shard directories do not collide with the merged output: segment
files only count when named ``seg-NNNNNNNN.jsonl[.gz]`` *directly* in
the directory being read, so ``analyze``/``info`` pointed at the
campaign root see exactly the merged trace.

A ``merge.json`` manifest (written atomically, last) records the
per-shard input fingerprints and the merged totals.  Merging is
idempotent: when the manifest already matches the current inputs the
merge is skipped; when it does not (or a previous merge was killed
half-way), the stale output segments are discarded and the merge runs
again from the shard streams, which are never mutated.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from collections.abc import Iterator

from repro.fleet.plan import ShardSpec, shard_dir
from repro.ioutil import atomic_write_bytes
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.records import PeerReport
from repro.traces.segments import (
    MANIFEST_NAME,
    SegmentedTraceReader,
    SegmentedTraceStore,
    _segment_index,
)

#: File name of the merge manifest at the campaign root.
MERGE_MANIFEST_NAME = "merge.json"


@dataclass(frozen=True)
class MergeResult:
    """Outcome of one :func:`merge_shards` call."""

    campaign_dir: Path
    records: int
    content_sha256: str
    shards: dict[int, int]  # shard_id -> records contributed
    reused: bool  # True when an up-to-date merge was already on disk


def _shard_stream(
    directory: Path, sid: int
) -> Iterator[tuple[float, int, int, PeerReport]]:
    """One shard's reports as sort keys ``(time, shard, ordinal)``.

    The ordinal preserves each shard's own report order among ties
    (same-instant reports from one worker stay in emission order).
    """
    for ordinal, report in enumerate(SegmentedTraceReader(directory)):
        yield (report.time, sid, ordinal, report)


def _shard_fingerprints(shard_dirs: dict[int, Path]) -> dict[str, str]:
    """Content digest per shard, keyed by the shard id as a string."""
    out: dict[str, str] = {}
    for sid, directory in sorted(shard_dirs.items()):
        reader = SegmentedTraceReader(directory)
        digest = hashlib.sha256()
        for path in reader.segment_paths():
            digest.update(path.read_bytes())
        out[str(sid)] = digest.hexdigest()
    return out


def _load_merge_manifest(campaign_dir: Path) -> dict[str, Any] | None:
    try:
        raw = (campaign_dir / MERGE_MANIFEST_NAME).read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def _clear_merged_output(campaign_dir: Path) -> None:
    """Drop a stale or half-written merged trace from the campaign root."""
    for path in campaign_dir.iterdir():
        if path.is_file() and _segment_index(path.name) is not None:
            path.unlink()
    manifest = campaign_dir / MANIFEST_NAME
    if manifest.exists():
        manifest.unlink()


def merge_shards(
    campaign_dir: str | Path,
    specs: list[ShardSpec] | None = None,
    *,
    shard_ids: list[int] | None = None,
    records_per_segment: int = 100_000,
    compress: bool = False,
    obs: AnyObserver = NULL_OBSERVER,
) -> MergeResult:
    """Merge shard traces under ``campaign_dir/shards`` into the root.

    ``specs`` (or explicit ``shard_ids``) selects which shards
    participate — quarantined shards are excluded by the caller.  The
    merged segments inherit ``records_per_segment``/``compress`` from
    the campaign, not from the shards.
    """
    campaign_dir = Path(campaign_dir)
    if shard_ids is None:
        if specs is None:
            raise ValueError("pass specs or shard_ids")
        shard_ids = [spec.shard_id for spec in specs]
    dirs = {sid: shard_dir(campaign_dir, sid) for sid in sorted(shard_ids)}
    for sid, directory in dirs.items():
        if not directory.is_dir():
            raise FileNotFoundError(
                f"shard {sid}: no trace directory at {directory}"
            )

    with obs.span("fleet.merge.fingerprint"):
        inputs = _shard_fingerprints(dirs)
    existing = _load_merge_manifest(campaign_dir)
    if existing is not None and existing.get("inputs") == inputs:
        # The manifest is written last, so its presence with matching
        # inputs proves the merged segments below it are complete.
        return MergeResult(
            campaign_dir=campaign_dir,
            records=int(existing["records"]),
            content_sha256=str(existing["content_sha256"]),
            shards={int(k): int(v) for k, v in existing["shards"].items()},
            reused=True,
        )

    _clear_merged_output(campaign_dir)
    counts = dict.fromkeys(dirs, 0)
    with obs.span("fleet.merge.write"):
        store = SegmentedTraceStore(
            campaign_dir,
            records_per_segment=records_per_segment,
            compress=compress,
            obs=obs,
        )
        for _, sid, _, report in heapq.merge(
            *(_shard_stream(directory, sid) for sid, directory in dirs.items())
        ):
            store.append(report)
            counts[sid] += 1
        store.close()
        content_sha = store.content_sha256()

    payload: dict[str, Any] = {
        "inputs": inputs,
        "records": sum(counts.values()),
        "content_sha256": content_sha,
        "shards": {str(sid): n for sid, n in sorted(counts.items())},
    }
    atomic_write_bytes(
        campaign_dir / MERGE_MANIFEST_NAME,
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )
    if obs.enabled:
        obs.count("fleet.merge.records", sum(counts.values()))
    return MergeResult(
        campaign_dir=campaign_dir,
        records=sum(counts.values()),
        content_sha256=content_sha,
        shards=dict(counts),
        reused=False,
    )
