"""Small statistics toolkit used by experiments and benchmarks.

From-scratch implementations (validated against scipy in the tests) of
the tools the reproduction pipeline needs:

- the two-sample Kolmogorov-Smirnov test, to quantify whether two
  degree distributions (e.g. morning vs flash crowd in Fig. 4) differ;
- seeded bootstrap confidence intervals for means of small metric
  series (the evolution figures have a few dozen post-warmup points);
- :func:`near_zero`, the shared float-degeneracy guard the REP004 lint
  rule points metric code at.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence
from dataclasses import dataclass

#: Default tolerance for :func:`near_zero`: far below any variance or
#: clustering value the analytics treat as meaningful, far above the
#: accumulation noise of summing a few million doubles.
NEAR_ZERO_EPS = 1e-12


def near_zero(x: float, eps: float = NEAR_ZERO_EPS) -> bool:
    """True when ``x`` is within ``eps`` of zero.

    The metric layer uses this instead of ``x == 0.0`` to guard
    degenerate denominators (zero variance, zero baseline clustering):
    exact float equality silently misses values that are zero up to
    rounding, sending them down the divide path with garbage results.
    """
    return abs(x) <= eps


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS statistic and asymptotic p-value."""

    statistic: float  # sup |F1 - F2|
    p_value: float
    n1: int
    n2: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _ks_p_value(lam: float) -> float:
    """Asymptotic Kolmogorov distribution tail Q(lambda)."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * math.exp(-2.0 * (k * lam) ** 2)
        total += term
        if abs(term) < 1e-12:
            break
    return max(0.0, min(1.0, 2.0 * total))


def ks_two_sample(sample1: Sequence[float], sample2: Sequence[float]) -> KsResult:
    """Two-sample KS test (asymptotic p-value, suitable for n >= ~20)."""
    n1, n2 = len(sample1), len(sample2)
    if n1 == 0 or n2 == 0:
        raise ValueError("both samples must be non-empty")
    a = sorted(sample1)
    b = sorted(sample2)
    i = j = 0
    d = 0.0
    while i < n1 and j < n2:
        x = a[i] if a[i] <= b[j] else b[j]
        while i < n1 and a[i] <= x:
            i += 1
        while j < n2 and b[j] <= x:
            j += 1
        d = max(d, abs(i / n1 - j / n2))
    effective = math.sqrt(n1 * n2 / (n1 + n2))
    lam = (effective + 0.12 + 0.11 / effective) * d
    return KsResult(statistic=d, p_value=_ks_p_value(lam), n1=n1, n2=n2)


@dataclass(frozen=True)
class BootstrapCi:
    """Percentile bootstrap confidence interval for a mean."""

    mean: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean_ci(
    sample: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2_000,
    seed: int = 0,
) -> BootstrapCi:
    """Percentile bootstrap CI for the sample mean (seeded)."""
    if not sample:
        raise ValueError("sample must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(sample)
    data = list(sample)
    means = sorted(
        sum(rng.choice(data) for _ in range(n)) / n for _ in range(resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    low_idx = int(alpha * resamples)
    high_idx = min(resamples - 1, int((1.0 - alpha) * resamples))
    return BootstrapCi(
        mean=sum(data) / n,
        low=means[low_idx],
        high=means[high_idx],
        confidence=confidence,
    )
