"""Span tracing and the top-level ``Observer`` facade.

An :class:`Observer` is the single handle instrumented code touches:

- ``obs.span("round.exchange")`` — a context manager timing a region in
  wall seconds *and* simulated seconds, with nesting depth and
  exception tagging; the wall duration also feeds a histogram of the
  same name, and (when an event log is attached) a ``span`` event is
  appended to the JSONL log.
- ``obs.count(name, n)`` / ``obs.gauge_set(name, v)`` /
  ``obs.observe(name, v)`` — direct metric updates.
- ``obs.enabled`` — ``False`` on the no-op implementation so hot loops
  can skip per-item work entirely (``if obs.enabled: ...``).

The module-level :data:`NULL_OBSERVER` is the process-wide no-op
default: every instrumented constructor takes ``obs=NULL_OBSERVER`` so
observability costs nothing unless explicitly switched on.

Determinism: spans read wall time only through the injectable
:class:`repro.obs.clock.Clock` and sim time only through a callable
bound by the simulator (``bind_sim_clock``); nothing here consumes
simulation RNG, so traces are byte-identical with obs on or off.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from types import TracebackType
from typing import Any, Protocol

from repro.obs.clock import Clock, WallClock
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class EventSink(Protocol):
    """Anything that accepts structured observability events."""

    def emit(self, event: dict[str, Any]) -> None:
        """Append one JSON-safe event."""
        ...


class Span:
    """One timed region; use via ``with obs.span(name): ...``.

    On exit the span records its wall duration into the histogram named
    after it and, if an event sink is attached, emits a ``span`` event
    carrying wall seconds, sim seconds, nesting depth, tags, and the
    exception type name when the body raised.
    """

    __slots__ = ("_obs", "name", "tags", "_wall_start", "_sim_start", "_depth")

    def __init__(self, obs: "Observer", name: str, tags: dict[str, Any] | None) -> None:
        self._obs = obs
        self.name = name
        self.tags = tags
        self._wall_start = 0.0
        self._sim_start = 0.0
        self._depth = 0

    def __enter__(self) -> "Span":
        obs = self._obs
        self._depth = len(obs._stack)
        obs._stack.append(self.name)
        self._wall_start = obs._clock.now()
        self._sim_start = obs._sim_clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        obs = self._obs
        wall_s = obs._clock.now() - self._wall_start
        sim_s = obs._sim_clock() - self._sim_start
        obs._stack.pop()
        obs.registry.histogram(self.name).observe(wall_s)
        sink = obs._sink
        if sink is not None:
            event: dict[str, Any] = {
                "type": "span",
                "name": self.name,
                "wall_s": wall_s,
                "sim_s": sim_s,
                "depth": self._depth,
            }
            if self.tags:
                event["tags"] = self.tags
            if exc_type is not None:
                event["error"] = exc_type.__name__
            sink.emit(event)


class _NullSpan:
    """A reusable do-nothing context manager (the disabled span)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


_NULL_SPAN = _NullSpan()


def _zero_sim_clock() -> float:
    """Default sim clock before a simulator binds its own."""
    return 0.0


class Observer:
    """The enabled observability facade: metrics registry + span tracer.

    Parameters
    ----------
    clock:
        Wall-clock seam (defaults to the monotonic host clock); tests
        pass a :class:`repro.obs.clock.ManualClock` for exact timings.
    sink:
        Optional event sink (typically a
        :class:`repro.obs.exporters.JsonlEventLog`) receiving one dict
        per finished span plus any events instrumented code emits.
    """

    enabled = True

    def __init__(self, clock: Clock | None = None, sink: EventSink | None = None) -> None:
        self.registry = MetricsRegistry()
        self._clock: Clock = clock if clock is not None else WallClock()
        self._sink = sink
        self._sim_clock: Callable[[], float] = _zero_sim_clock  # repro: noqa[REP101] runtime binding; rebound via bind_sim_clock after restore
        self._stack: list[str] = []  # repro: noqa[REP101] in-flight span nesting; empty at every checkpoint boundary

    @property
    def sink(self) -> EventSink | None:
        """The attached event sink, if any."""
        return self._sink

    def bind_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        """Attach the simulator's clock so spans can report sim seconds."""
        self._sim_clock = sim_clock

    def span(self, name: str, **tags: Any) -> Span:
        """Context manager timing the enclosed region (see :class:`Span`)."""
        return Span(self, name, tags or None)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.registry.counter(name).add(amount)

    def gauge_set(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        self.registry.gauge(name).set(value)

    def observe(
        self, name: str, value: float, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        """Record ``value`` into the histogram ``name``."""
        self.registry.histogram(name, boundaries).observe(value)

    def emit(self, event: dict[str, Any]) -> None:
        """Forward a structured event to the sink, if one is attached."""
        if self._sink is not None:
            self._sink.emit(event)

    def checkpoint_state(self) -> dict[str, Any] | None:
        """Serialise counter/gauge/histogram state for a checkpoint."""
        return {"registry": self.registry.state()}

    def restore_checkpoint(self, state: dict[str, Any] | None) -> None:
        """Restore metric state saved by :meth:`checkpoint_state`."""
        if state is not None:
            self.registry.restore(state["registry"])


class NullObserver:
    """The no-op observer: every operation is a constant-time no-op.

    ``enabled`` is ``False`` so hot paths can skip whole instrumented
    blocks; ``span()`` hands back a shared do-nothing context manager.
    """

    enabled = False

    def bind_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        """Ignore the sim clock (nothing is timed)."""

    def span(self, name: str, **tags: Any) -> _NullSpan:
        """Return the shared no-op context manager."""
        return _NULL_SPAN

    def count(self, name: str, amount: float = 1.0) -> None:
        """Drop the increment."""

    def gauge_set(self, name: str, value: float) -> None:
        """Drop the gauge update."""

    def observe(
        self, name: str, value: float, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        """Drop the observation."""

    def emit(self, event: dict[str, Any]) -> None:
        """Drop the event."""

    def checkpoint_state(self) -> dict[str, Any] | None:
        """No state to checkpoint."""
        return None

    def restore_checkpoint(self, state: dict[str, Any] | None) -> None:
        """Nothing to restore."""


NULL_OBSERVER = NullObserver()
"""Process-wide no-op observer; the default for every ``obs=`` parameter."""

AnyObserver = Observer | NullObserver
"""Union accepted by instrumented constructors."""
