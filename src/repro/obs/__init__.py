"""Observability for the reproduction: metrics, spans, and exporters.

Magellan is a paper about *measuring* a running P2P system; this
package gives our own reproduction the same courtesy.  It provides a
process-local metrics registry (counters, gauges, fixed-bucket
histograms), a span/tracing API (nested ``with obs.span(...)`` blocks
timed in wall *and* simulated seconds), and exporters (append-only
JSONL event log, Prometheus text, atomic JSON snapshots) — all behind
a no-op default (``NULL_OBSERVER``) so instrumentation costs nothing
unless a run passes ``--obs-dir``.

Determinism rules (DESIGN.md §7): wall time is read only through the
injectable clock seam in :mod:`repro.obs.clock`; instrumentation never
consumes simulation RNG; metric state checkpoints/restores with the
simulator so resumed campaigns report continuous totals.
"""

from repro.obs.clock import Clock, ManualClock, WallClock
from repro.obs.exporters import (
    JsonlEventLog,
    create_observer,
    finalize_observer,
    render_prometheus,
    write_metrics_snapshot,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import (
    NULL_OBSERVER,
    AnyObserver,
    EventSink,
    NullObserver,
    Observer,
    Span,
)
from repro.obs.summarize import (
    ObsSummary,
    SpanStats,
    read_events,
    render_summary,
    summarize_dir,
)

__all__ = [
    "Clock",
    "ManualClock",
    "WallClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "AnyObserver",
    "EventSink",
    "Span",
    "JsonlEventLog",
    "create_observer",
    "finalize_observer",
    "render_prometheus",
    "write_metrics_snapshot",
    "ObsSummary",
    "SpanStats",
    "read_events",
    "render_summary",
    "summarize_dir",
]
