"""Exporters: JSONL event log, Prometheus text, and JSON snapshots.

Three output formats, all rooted in one ``--obs-dir`` directory:

- ``events.jsonl`` — append-only event log (one JSON object per line),
  written through :class:`JsonlEventLog` with the same buffered-append
  + fsync-on-close discipline as the trace stores; opened in append
  mode so resumed campaigns keep extending the same log.
- ``metrics.json`` — full registry state (counters, gauges, histogram
  buckets) written atomically via :mod:`repro.ioutil` at finalise time.
- ``metrics.prom`` — Prometheus text exposition of the same registry,
  for eyeballing or scraping.

:func:`create_observer` / :func:`finalize_observer` are the two calls
the CLI makes: the first builds an enabled :class:`Observer` wired to
the event log (or hands back :data:`NULL_OBSERVER` when no directory
was requested), the second flushes and writes the snapshots.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, TextIO

from repro.ioutil import atomic_write_bytes, fsync_directory
from repro.obs.clock import Clock
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_OBSERVER, AnyObserver, Observer

EVENTS_FILENAME = "events.jsonl"
METRICS_JSON_FILENAME = "metrics.json"
METRICS_PROM_FILENAME = "metrics.prom"


class JsonlEventLog:
    """Append-only JSONL event sink with buffered flushing.

    Events are serialised compactly with sorted keys and flushed every
    ``flush_every`` lines; :meth:`close` flushes, fsyncs the file, and
    fsyncs the parent directory so the log survives a crash of the
    process that follows a clean finalise.
    """

    def __init__(self, path: str | Path, *, flush_every: int = 64) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO | None = self.path.open("a", encoding="utf-8")
        self._flush_every = max(1, flush_every)
        self._pending = 0
        self.lines_written = 0

    def emit(self, event: dict[str, Any]) -> None:
        """Append one event as a JSON line."""
        if self._fh is None:
            raise ValueError(f"event log {self.path} is closed")
        self._fh.write(json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n")
        self.lines_written += 1
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        """Flush, fsync, and close the log (idempotent)."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._fh = None
        fsync_directory(self.path.parent)


def _prom_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    return name.replace(".", "_").replace("-", "_")


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as Prometheus text exposition format."""
    lines: list[str] = []
    for name, value in registry.counters().items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom}_total counter")
        lines.append(f"{prom}_total {value:g}")
    for name, value in registry.gauges().items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value:g}")
    for name, hist in registry.histograms().items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket in zip(hist.boundaries, hist.bucket_counts):
            cumulative += bucket
            lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{prom}_sum {hist.total:.9g}")
        lines.append(f"{prom}_count {hist.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_metrics_snapshot(registry: MetricsRegistry, obs_dir: str | Path) -> None:
    """Atomically write ``metrics.json`` and ``metrics.prom`` under ``obs_dir``."""
    directory = Path(obs_dir)
    directory.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(registry.state(), indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(directory / METRICS_JSON_FILENAME, payload.encode("utf-8"))
    prom = render_prometheus(registry)
    atomic_write_bytes(directory / METRICS_PROM_FILENAME, prom.encode("utf-8"))


def create_observer(obs_dir: str | Path | None, *, clock: Clock | None = None) -> AnyObserver:
    """Build the observer for a run.

    With ``obs_dir`` set, returns an enabled :class:`Observer` whose
    span/custom events append to ``<obs_dir>/events.jsonl``; with
    ``None``, returns the shared no-op observer.
    """
    if obs_dir is None:
        return NULL_OBSERVER
    log = JsonlEventLog(Path(obs_dir) / EVENTS_FILENAME)
    return Observer(clock=clock, sink=log)


def finalize_observer(obs: AnyObserver, obs_dir: str | Path | None) -> None:
    """Flush the event log and write metric snapshots (no-op when disabled)."""
    if obs_dir is None or not isinstance(obs, Observer):
        return
    sink = obs.sink
    if isinstance(sink, JsonlEventLog):
        sink.close()
    write_metrics_snapshot(obs.registry, obs_dir)
