"""The injectable wall-clock seam of the observability subsystem.

Everything in :mod:`repro.obs` that needs a duration reads time through
a :class:`Clock`, never from :mod:`time` directly — this module is the
*only* place in the package allowed to touch the host clock (enforced
by QA rule REP002, which scopes ``obs/`` into the simulated-time
packages; the single read below carries an audited suppression).

Two implementations ship:

- :class:`WallClock` — monotonic host time, the production default;
- :class:`ManualClock` — a hand-advanced clock for deterministic tests
  (span durations become exact, reproducible numbers).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:
    import asyncio


class Clock(Protocol):
    """Anything that can report elapsed seconds from a fixed origin."""

    def now(self) -> float:
        """Seconds since an arbitrary but fixed origin."""
        ...


class WallClock:
    """Monotonic host clock (the production timing source).

    Uses ``time.perf_counter`` — monotonic and high-resolution — so
    span durations survive NTP steps.  The origin is arbitrary; only
    differences are meaningful.
    """

    def now(self) -> float:
        """Monotonic host seconds (high resolution, arbitrary origin)."""
        # The one audited wall-clock read of the whole obs package: every
        # duration measured anywhere in repro.obs flows through here.
        return time.perf_counter()  # repro: noqa[REP002] the clock seam itself


class LoopClock:
    """A clock reading an asyncio event loop's own monotonic time.

    The ingestion service measures commit latency and backoff windows
    against the loop it runs on, so those durations stay coherent with
    everything else the loop schedules — and stay behind this seam
    rather than touching :mod:`time` directly (REP002 scopes
    ``ingest/`` into the simulated-time packages).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def now(self) -> float:
        """The event loop's monotonic seconds (arbitrary origin)."""
        return self._loop.time()


class ManualClock:
    """A clock advanced explicitly by tests.

    Spans timed against a ``ManualClock`` report exact, reproducible
    durations, which keeps observability's own tests deterministic.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        """Current manual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot advance backwards: {seconds}")
        self._now += seconds
