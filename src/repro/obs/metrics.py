"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` owns every metric created through it and can
serialise its full state to plain dicts (``state()``/``restore()``) so
campaign checkpoints round-trip cumulative totals across kill/resume.

Design constraints inherited from the rest of the repo:

- **Determinism** — metrics only *observe*; nothing here reads clocks
  (durations arrive as arguments) or consumes random state.
- **Cheap hot path** — ``Counter.add`` is one dict-free float add;
  histograms use :func:`bisect.bisect_right` over fixed boundaries.

Metric names are dotted lowercase paths (``layer.component.what``),
e.g. ``sim.rounds``, ``trace.bytes_written``, ``analytics.snapshot_nodes``
— see DESIGN.md §7 for the full naming scheme.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from typing import Any

# Default histogram boundaries (seconds): spans from sub-millisecond
# analytics helpers up to multi-minute campaign stages.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


class Counter:
    """A monotonically increasing total (e.g. ``trace.reports_received``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (e.g. ``sim.peers``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = value


class Histogram:
    """A fixed-boundary histogram of observations (typically durations).

    Buckets are cumulative-style on export (Prometheus ``le`` semantics)
    but stored as per-bucket counts internally; ``boundaries`` are upper
    bounds, with an implicit final ``+Inf`` bucket.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "total")

    def __init__(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(boundaries)
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: boundaries must be sorted")
        self.name = name
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_right(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Creates, owns, and serialises a process's metrics.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: calling
    twice with the same name returns the same object, so instrumented
    components can cheaply cache the handle or re-look it up.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, boundaries)
        return h

    def counters(self) -> dict[str, float]:
        """All counter values, keyed by name (sorted)."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """All gauge values, keyed by name (sorted)."""
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> dict[str, Histogram]:
        """All histograms, keyed by name (sorted)."""
        return dict(sorted(self._histograms.items()))

    def state(self) -> dict[str, Any]:
        """Serialise everything to JSON-safe plain dicts (for checkpoints)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: {
                    "boundaries": list(h.boundaries),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Replace registry contents with a ``state()`` snapshot."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for name, value in state.get("counters", {}).items():
            self.counter(name).value = float(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).value = float(value)
        for name, h_state in state.get("histograms", {}).items():
            h = self.histogram(name, tuple(h_state["boundaries"]))
            h.bucket_counts = [int(n) for n in h_state["bucket_counts"]]
            h.count = int(h_state["count"])
            h.total = float(h_state["total"])
