"""Turn an observability directory into a human-readable report.

Backs ``python -m repro obs summarize <obs-dir>``: reads the JSONL
event log tolerantly (a torn final line from a crashed run is counted,
not fatal), aggregates span events per name, merges in the
``metrics.json`` snapshot when present, and renders aligned text
tables.  Rendering is self-contained (no :mod:`repro.core` imports) so
the obs package stays a leaf in the import graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs.exporters import EVENTS_FILENAME, METRICS_JSON_FILENAME


@dataclass
class SpanStats:
    """Aggregate of every ``span`` event sharing one name."""

    name: str
    count: int = 0
    wall_total: float = 0.0
    wall_max: float = 0.0
    sim_total: float = 0.0
    errors: int = 0

    @property
    def wall_mean(self) -> float:
        """Mean wall seconds per span (0.0 when empty)."""
        return self.wall_total / self.count if self.count else 0.0

    def add(self, wall_s: float, sim_s: float, error: bool) -> None:
        """Fold one span event into the aggregate."""
        self.count += 1
        self.wall_total += wall_s
        self.wall_max = max(self.wall_max, wall_s)
        self.sim_total += sim_s
        if error:
            self.errors += 1


@dataclass
class ObsSummary:
    """Everything ``obs summarize`` extracted from an obs directory."""

    spans: dict[str, SpanStats] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    events_read: int = 0
    bad_lines: int = 0


def read_events(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Read a JSONL event log tolerantly.

    Returns ``(events, bad_lines)`` where ``bad_lines`` counts lines
    that failed to parse (e.g. a line torn by a crash) — they are
    skipped, never fatal.
    """
    events: list[dict[str, Any]] = []
    bad = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad += 1
                continue
            if isinstance(record, dict):
                events.append(record)
            else:
                bad += 1
    return events, bad


def summarize_dir(obs_dir: str | Path) -> ObsSummary:
    """Aggregate an obs directory (event log + metrics snapshot)."""
    directory = Path(obs_dir)
    summary = ObsSummary()
    events_path = directory / EVENTS_FILENAME
    if events_path.exists():
        events, summary.bad_lines = read_events(events_path)
        summary.events_read = len(events)
        for event in events:
            if event.get("type") != "span":
                continue
            name = str(event.get("name", "?"))
            stats = summary.spans.get(name)
            if stats is None:
                stats = summary.spans[name] = SpanStats(name)
            stats.add(
                float(event.get("wall_s", 0.0)),
                float(event.get("sim_s", 0.0)),
                "error" in event,
            )
    metrics_path = directory / METRICS_JSON_FILENAME
    if metrics_path.exists():
        state = json.loads(metrics_path.read_text(encoding="utf-8"))
        summary.counters = {str(k): float(v) for k, v in state.get("counters", {}).items()}
        summary.gauges = {str(k): float(v) for k, v in state.get("gauges", {}).items()}
    return summary


def _render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned text table (first column left, rest right)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: list[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts.extend(cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:]))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _span_section(title: str, spans: list[SpanStats]) -> list[str]:
    """One titled span-timings table (empty list when no spans match)."""
    if not spans:
        return []
    rows = [
        [
            s.name,
            str(s.count),
            f"{s.wall_total:.3f}",
            f"{s.wall_mean * 1000:.3f}",
            f"{s.wall_max * 1000:.3f}",
            f"{s.sim_total:.0f}",
            str(s.errors),
        ]
        for s in spans
    ]
    table = _render_table(
        ["span", "count", "wall s", "mean ms", "max ms", "sim s", "errors"], rows
    )
    return [title, table, ""]


def render_summary(obs_dir: str | Path) -> str:
    """Render the full human report for ``obs summarize``."""
    summary = summarize_dir(obs_dir)
    spans = sorted(summary.spans.values(), key=lambda s: s.name)
    sim_spans = [s for s in spans if s.name.startswith(("round", "sim", "campaign"))]
    analytics_spans = [s for s in spans if s.name.startswith("analytics")]
    other_spans = [s for s in spans if s not in sim_spans and s not in analytics_spans]

    out: list[str] = [f"obs summary: {obs_dir}"]
    out.append(f"events: {summary.events_read} read, {summary.bad_lines} unparseable")
    out.append("")
    out.extend(_span_section("Round-phase timings", sim_spans))
    out.extend(_span_section("Analytics timings", analytics_spans))
    out.extend(_span_section("Other timings", other_spans))
    if summary.counters:
        rows = [[name, f"{value:g}"] for name, value in sorted(summary.counters.items())]
        out.append("Counters")
        out.append(_render_table(["counter", "value"], rows))
        out.append("")
    if summary.gauges:
        rows = [[name, f"{value:g}"] for name, value in sorted(summary.gauges.items())]
        out.append("Gauges")
        out.append(_render_table(["gauge", "value"], rows))
        out.append("")
    if len(out) == 3:
        out.append("(no observability data found)")
    return "\n".join(out).rstrip() + "\n"
